//! The invariant checker: verifies the complete HDT level structure
//! against ground truth recomputed from the edge records. Heavy —
//! `O(n · L + m · L)` — and intended for tests, examples and debugging.

use crate::BatchDynamicConnectivity;
use dyncon_primitives::FxHashMap;
use dyncon_spanning::UnionFind;

impl BatchDynamicConnectivity {
    /// Check every structural invariant:
    ///
    /// 1. **Invariant 1**: components of `G_i` have ≤ `2^i` vertices;
    /// 2. **Invariant 2** (equivalent nesting form): every `F_i` spans
    ///    `G_i`, hence `F_L` is a minimum spanning forest w.r.t. levels;
    /// 3. tree edges of level `j` are present in exactly the forests
    ///    `F_j..F_L`; non-tree edges in none;
    /// 4. non-tree edges sit in both endpoints' adjacency arrays exactly
    ///    at their level, with consistent position back-pointers;
    /// 5. each forest's Euler tours, augmented counts and skip lists are
    ///    internally consistent (full `dyncon-ett` validation).
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.num_vertices();
        let nl = self.num_levels();
        // Collect live records.
        let slots = self.edges.live_slots();
        let mut tree_edges: Vec<(usize, (u32, u32))> = Vec::new();
        let mut nontree_edges: Vec<(usize, u32, (u32, u32))> = Vec::new();
        for &s in &slots {
            let li = self.edges.level(s);
            if li >= nl {
                return Err(format!("slot {s}: level {li} out of range"));
            }
            let e = self.edges.endpoints(s);
            if self.edges.is_tree(s) {
                tree_edges.push((li, e));
            } else {
                nontree_edges.push((li, s, e));
            }
        }

        // 3. Forest membership per level.
        for &(li, (u, v)) in &tree_edges {
            for fi in 0..nl {
                let present = self.levels[fi].has_edge(u, v);
                if present != (fi >= li) {
                    return Err(format!(
                        "tree edge ({u},{v}) level {li}: presence in F_{fi} is {present}"
                    ));
                }
            }
        }
        for &(_, _, (u, v)) in &nontree_edges {
            for fi in 0..nl {
                if self.levels[fi].has_edge(u, v) {
                    return Err(format!("non-tree edge ({u},{v}) linked in F_{fi}"));
                }
            }
        }

        // 4. Adjacency consistency.
        let mut adj_entries = 0usize;
        for v in 0..n as u32 {
            for (lev, s) in self.adj.entries_of(v) {
                let li = self.edges.level(s);
                if self.edges.is_tree(s) {
                    return Err(format!("tree edge slot {s} in adjacency of {v}"));
                }
                if li != lev as usize {
                    return Err(format!(
                        "slot {s} at adjacency level {lev} but record level {li}"
                    ));
                }
                let (a, b) = self.edges.endpoints(s);
                if v != a && v != b {
                    return Err(format!("slot {s} in adjacency of non-endpoint {v}"));
                }
                let p = self.edges.pos(s, v) as usize;
                let arr = self.adj.fetch(v, lev, usize::MAX);
                if arr.get(p) != Some(&s) {
                    return Err(format!("slot {s} position {p} stale at vertex {v}"));
                }
                adj_entries += 1;
            }
        }
        if adj_entries != nontree_edges.len() * 2 {
            return Err(format!(
                "adjacency holds {adj_entries} entries, expected {}",
                nontree_edges.len() * 2
            ));
        }

        // 1 + 2 per level, plus full ETT validation.
        for fi in 0..nl {
            // Ground truth G_{fi+1}: all edges with level index ≤ fi.
            let mut dsu = UnionFind::new(n);
            for &(li, (u, v)) in &tree_edges {
                if li <= fi {
                    dsu.union(u, v);
                }
            }
            for &(li, _, (u, v)) in &nontree_edges {
                if li <= fi {
                    dsu.union(u, v);
                }
            }
            // Invariant 1: component sizes ≤ 2^{fi+1}.
            let bound = 1u64 << (fi + 1).min(63);
            let mut sizes: FxHashMap<u32, u64> = FxHashMap::default();
            for v in 0..n as u32 {
                *sizes.entry(dsu.find(v)).or_default() += 1;
            }
            for (&root, &size) in &sizes {
                if size > bound {
                    return Err(format!(
                        "Invariant 1 violated: G_{} component of {root} has {size} > {bound} vertices",
                        fi + 1
                    ));
                }
            }
            // Invariant 2 (nesting form): F_{fi+1} spans G_{fi+1} — the
            // forest partition equals the graph partition.
            let mut root_to_rep: FxHashMap<u32, u64> = FxHashMap::default();
            let mut rep_to_root: FxHashMap<u64, u32> = FxHashMap::default();
            for v in 0..n as u32 {
                let root = dsu.find(v);
                let rep = self.levels[fi].find_rep(v);
                if let Some(&r) = root_to_rep.get(&root) {
                    if r != rep {
                        return Err(format!(
                            "F_{} does not span G_{}: vertex {v} separated from its G-component",
                            fi + 1,
                            fi + 1
                        ));
                    }
                } else {
                    if let Some(&other) = rep_to_root.get(&rep) {
                        return Err(format!(
                            "F_{} merges G_{} components {root} and {other}",
                            fi + 1,
                            fi + 1
                        ));
                    }
                    root_to_rep.insert(root, rep);
                    rep_to_root.insert(rep, root);
                }
            }
            // 5. Full ETT validation of this forest.
            let expected_edges: Vec<(u32, u32)> = tree_edges
                .iter()
                .filter_map(|&(li, e)| (li <= fi).then_some(e))
                .collect();
            let expected_at_level: Vec<(u32, u32)> = tree_edges
                .iter()
                .filter_map(|&(li, e)| (li == fi).then_some(e))
                .collect();
            let mut expected_nontree: FxHashMap<u32, u64> = FxHashMap::default();
            for v in 0..n as u32 {
                let len = self.adj.len(v, fi as u8);
                if len > 0 {
                    expected_nontree.insert(v, len as u64);
                }
            }
            self.levels[fi]
                .validate(&expected_edges, &expected_at_level, &expected_nontree)
                .map_err(|e| format!("F_{}: {e}", fi + 1))?;
        }
        Ok(())
    }
}
