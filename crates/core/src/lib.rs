//! # dyncon-core
//!
//! **Parallel batch-dynamic graph connectivity** — a faithful implementation
//! of Acar, Anderson, Blelloch and Dhulipala, *Parallel Batch-Dynamic Graph
//! Connectivity*, SPAA 2019 (arXiv:1903.08794).
//!
//! [`BatchDynamicConnectivity`] maintains an undirected graph over a fixed
//! vertex set under batches of edge insertions, edge deletions and
//! connectivity queries:
//!
//! * [`BatchDynamicConnectivity::batch_connected`] — Algorithm 1,
//!   `O(k lg(1 + n/k))` expected work and `O(lg n)` depth w.h.p. (Thm 3);
//! * [`BatchDynamicConnectivity::batch_insert`] — Algorithm 2, same bounds
//!   (Thm 4);
//! * [`BatchDynamicConnectivity::batch_delete`] — Algorithm 3, driving one
//!   of the two replacement searches per level:
//!   [`DeletionAlgorithm::Simple`] (Algorithm 4: work-efficient w.r.t. HDT,
//!   `O(lg⁴ n)` depth, Thms 5–6) or [`DeletionAlgorithm::Interleaved`]
//!   (Algorithm 5: `O(lg³ n)` depth and the improved
//!   `O(lg n · lg(1 + n/Δ))` amortized work bound, Thms 7–9).
//!
//! Construction goes through the workspace-wide [`Builder`]
//! (`dyncon-api`), which also selects the deletion algorithm, toggles
//! statistics and drives the E9 ablation; the structure implements the
//! [`dyncon_api::Connectivity`] and [`dyncon_api::BatchDynamic`] traits,
//! whose mixed-op [`dyncon_api::BatchDynamic::apply`] entry point
//! validates vertex ids and returns typed errors (see [`mod@api`]).
//!
//! ## Structure (§2.2, §3)
//!
//! Edges carry levels `1..=L`, `L = ⌈lg n⌉` (level *indices* `0..L` in
//! code). `G_i` is the subgraph of edges with level ≤ `i`; a spanning
//! forest `F_i` of every `G_i` is maintained as a batch-parallel Euler tour
//! forest (`dyncon-ett`), with `F_1 ⊆ F_2 ⊆ … ⊆ F_L`. Two invariants are
//! maintained (and checked by [`BatchDynamicConnectivity::check_invariants`]):
//!
//! 1. components of `G_i` have at most `2^i` vertices;
//! 2. `F_L` is a minimum spanning forest with respect to edge levels.
//!
//! Non-tree edges live in per-(vertex, level) adjacency arrays
//! (Appendix 8) mirrored into the forests' augmented counts (Appendix 9).

pub mod adjacency;
pub mod api;
pub mod delete;
pub mod edges;
pub mod export;
pub mod insert;
pub mod search_interleaved;
pub mod search_simple;
pub mod stats;
pub mod validate;

use adjacency::AdjacencyStore;
pub use dyncon_api::{Builder, DeletionAlgorithm};
use dyncon_ett::EulerTourForest;
use edges::EdgeIndex;
pub use stats::Stats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-level RNG seed for the level-`li` Euler tour forest of a graph
/// over `n` vertices. The golden-ratio constant is perturbed by the whole
/// `(level, n)` pair so every forest (across levels *and* across
/// structures of different sizes) draws distinct treap priorities.
#[inline]
pub(crate) fn level_seed(li: usize, n: usize) -> u64 {
    0x9e37_79b9 ^ (((li as u64) << 32) | n as u64)
}

/// The paper's batch-dynamic connectivity structure.
///
/// ```
/// use dyncon_core::BatchDynamicConnectivity;
///
/// let mut g = BatchDynamicConnectivity::new(6);
/// g.batch_insert(&[(0, 1), (1, 2), (2, 0), (4, 5)]);
/// assert_eq!(g.batch_connected(&[(0, 2), (0, 4)]), vec![true, false]);
///
/// // Deleting a cycle edge keeps the component connected: the structure
/// // finds the replacement edge on its own.
/// g.batch_delete(&[(1, 2)]);
/// assert!(g.connected(1, 2));
/// assert_eq!(g.num_components(), 3); // {0,1,2}, {4,5}, {3}
/// ```
///
/// The inherent methods are the unchecked fast path (out-of-range vertex
/// ids panic); the [`dyncon_api::BatchDynamic`] trait impl layers
/// validated, mixed-op batches with typed errors on top.
pub struct BatchDynamicConnectivity {
    n: usize,
    num_levels: usize,
    /// `levels[li]` is the forest `F_{li+1}` of `G_{li+1}`.
    pub(crate) levels: Vec<EulerTourForest>,
    pub(crate) adj: AdjacencyStore,
    pub(crate) edges: EdgeIndex,
    pub(crate) algo: DeletionAlgorithm,
    pub(crate) stats: Stats,
    /// Query counter, separate from [`Stats`] so `batch_connected` can
    /// take `&self` (queries never need exclusive access).
    pub(crate) queries: AtomicU64,
    pub(crate) stats_enabled: bool,
    /// When true, Algorithm 4 scans all non-tree edges at once instead of
    /// doubling (the E9 ablation knob; never an asymptotic win). Set via
    /// [`Builder::scan_all`].
    pub(crate) scan_all_ablation: bool,
}

impl BatchDynamicConnectivity {
    /// Empty graph over `n` vertices with the default configuration (the
    /// improved deletion algorithm, statistics on). Panics on unusable
    /// `n`; use [`BatchDynamicConnectivity::builder`] for a fallible,
    /// fully configurable construction.
    pub fn new(n: usize) -> Self {
        Self::builder(n)
            .build()
            .expect("vertex count out of the supported range")
    }

    /// A [`Builder`] over `n` vertices: the configuration surface for
    /// this structure (deletion algorithm, stats, ablation knobs).
    ///
    /// ```
    /// use dyncon_core::{BatchDynamicConnectivity, DeletionAlgorithm};
    ///
    /// let g: BatchDynamicConnectivity = BatchDynamicConnectivity::builder(16)
    ///     .algorithm(DeletionAlgorithm::Simple)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(g.num_vertices(), 16);
    /// ```
    pub fn builder(n: usize) -> Builder {
        Builder::new(n)
    }

    /// Construct from a validated [`Builder`] (the
    /// [`dyncon_api::BuildFrom`] entry point).
    pub(crate) fn from_builder(b: &Builder) -> Self {
        let n = b.num_vertices;
        let num_levels = (usize::BITS - (n - 1).leading_zeros()).max(1) as usize;
        let levels = (0..num_levels)
            .map(|li| EulerTourForest::new(n, level_seed(li, n)))
            .collect();
        Self {
            n,
            num_levels,
            levels,
            adj: AdjacencyStore::new(n),
            edges: EdgeIndex::new(),
            algo: b.algorithm,
            stats: Stats::default(),
            queries: AtomicU64::new(0),
            stats_enabled: b.stats_enabled,
            scan_all_ablation: b.scan_all_ablation,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of levels `L = max(1, ⌈lg n⌉)`.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Index of the top level (`L - 1`; level `L` in paper terms).
    pub(crate) fn top(&self) -> usize {
        self.num_levels - 1
    }

    /// Number of edges currently in the graph.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of connected components (isolated vertices count).
    pub fn num_components(&self) -> usize {
        self.n - self.levels[self.top()].num_edges()
    }

    /// Size of the component containing `v`.
    pub fn component_size(&self, v: u32) -> u64 {
        self.levels[self.top()].component_size(v)
    }

    /// True if the edge `{u,v}` is currently in the graph.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        u != v && self.edges.contains(u, v)
    }

    /// The deletion algorithm this instance runs.
    pub fn algorithm(&self) -> DeletionAlgorithm {
        self.algo
    }

    /// Snapshot of the operation statistics. All zeros when statistics
    /// were disabled via [`Builder::stats`].
    pub fn stats(&self) -> Stats {
        let mut s = self.stats.clone();
        s.queries = self.queries.load(Ordering::Relaxed);
        s
    }

    /// Reset operation statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.queries.store(0, Ordering::Relaxed);
    }

    /// Record statistics, if enabled. Mutation-path counters funnel
    /// through here so disabling stats removes the bookkeeping.
    #[inline]
    pub(crate) fn stat(&mut self, f: impl FnOnce(&mut Stats)) {
        if self.stats_enabled {
            f(&mut self.stats);
        }
    }

    /// Algorithm 1: answer a batch of connectivity queries against `F_L`.
    /// Takes `&self` — concurrent query batches never contend on the
    /// structure itself (the query counter is a relaxed atomic).
    pub fn batch_connected(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        if self.stats_enabled {
            self.queries
                .fetch_add(pairs.len() as u64, Ordering::Relaxed);
        }
        let top = self.top();
        self.levels[top].batch_connected(pairs)
    }

    /// Single connectivity query.
    pub fn connected(&self, u: u32, v: u32) -> bool {
        self.levels[self.top()].connected(u, v)
    }

    /// Convenience single-edge insert; returns false if it was a duplicate
    /// or a self-loop.
    pub fn insert(&mut self, u: u32, v: u32) -> bool {
        self.batch_insert(&[(u, v)]) == 1
    }

    /// Convenience single-edge delete; returns false if absent.
    pub fn delete(&mut self, u: u32, v: u32) -> bool {
        self.batch_delete(&[(u, v)]) == 1
    }

    /// Normalize a user batch: order endpoints, drop self loops, dedup.
    /// Fully parallel (map + pack + parallel sort); the sorted result also
    /// fixes the edge order every downstream tie-break is resolved in.
    pub(crate) fn normalize(batch: &[(u32, u32)]) -> Vec<(u32, u32)> {
        use dyncon_primitives::{pack_by, par_map_collect, sort_dedup};
        let oriented: Vec<(u32, u32)> = par_map_collect(batch, |&(u, v)| (u.min(v), u.max(v)));
        let mut es = pack_by(&oriented, |&(u, v)| u != v);
        sort_dedup(&mut es);
        es
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression test for the seed-precedence fix: the original
    /// expression `0x9e37_79b9 ^ (li as u64) << 32 | n as u64` parsed as
    /// `(0x9e37_79b9 ^ (li << 32)) | n` — OR-ing `n` into the constant —
    /// rather than the intended XOR of the whole `(li, n)` pair. The
    /// parenthesized form must keep seeds distinct per level and mix `n`
    /// reversibly (XOR, not OR).
    #[test]
    fn level_seeds_are_distinct_per_level() {
        for n in [2usize, 3, 7, 1024, 1 << 20] {
            let levels = (usize::BITS - (n - 1).leading_zeros()).max(1) as usize;
            let mut seeds: Vec<u64> = (0..levels).map(|li| level_seed(li, n)).collect();
            seeds.sort_unstable();
            seeds.dedup();
            assert_eq!(seeds.len(), levels, "duplicate per-level seed for n={n}");
        }
    }

    #[test]
    fn level_seeds_mix_n_by_xor_not_or() {
        // XOR keeps different n distinguishable at every level; the old
        // OR-parse collapsed any n whose bits were covered by the
        // constant's low word.
        let (a, b) = (level_seed(0, 0x1000_0b99), level_seed(0, 0x1000_0b9b));
        assert_ne!(a, b, "distinct n must give distinct seeds");
        assert_eq!(level_seed(3, 100) ^ level_seed(0, 100), 3u64 << 32);
    }

    #[test]
    fn builder_configures_the_structure() {
        let g: BatchDynamicConnectivity = BatchDynamicConnectivity::builder(10)
            .algorithm(DeletionAlgorithm::Simple)
            .stats(false)
            .build()
            .unwrap();
        assert_eq!(g.algorithm(), DeletionAlgorithm::Simple);
        assert_eq!(g.num_vertices(), 10);
        // Stats disabled: querying leaves the counter at zero.
        g.batch_connected(&[(0, 1)]);
        assert_eq!(g.stats().queries, 0);
    }

    #[test]
    fn queries_take_shared_reference() {
        let mut g = BatchDynamicConnectivity::new(8);
        g.batch_insert(&[(0, 1)]);
        let shared = &g;
        let (a, b) = (
            shared.batch_connected(&[(0, 1)]),
            shared.batch_connected(&[(0, 2)]),
        );
        assert_eq!((a, b), (vec![true], vec![false]));
        assert_eq!(g.stats().queries, 2);
    }
}
