//! # dyncon-core
//!
//! **Parallel batch-dynamic graph connectivity** — a faithful implementation
//! of Acar, Anderson, Blelloch and Dhulipala, *Parallel Batch-Dynamic Graph
//! Connectivity*, SPAA 2019 (arXiv:1903.08794).
//!
//! [`BatchDynamicConnectivity`] maintains an undirected graph over a fixed
//! vertex set under batches of edge insertions, edge deletions and
//! connectivity queries:
//!
//! * [`BatchDynamicConnectivity::batch_connected`] — Algorithm 1,
//!   `O(k lg(1 + n/k))` expected work and `O(lg n)` depth w.h.p. (Thm 3);
//! * [`BatchDynamicConnectivity::batch_insert`] — Algorithm 2, same bounds
//!   (Thm 4);
//! * [`BatchDynamicConnectivity::batch_delete`] — Algorithm 3, driving one
//!   of the two replacement searches per level:
//!   [`DeletionAlgorithm::Simple`] (Algorithm 4: work-efficient w.r.t. HDT,
//!   `O(lg⁴ n)` depth, Thms 5–6) or [`DeletionAlgorithm::Interleaved`]
//!   (Algorithm 5: `O(lg³ n)` depth and the improved
//!   `O(lg n · lg(1 + n/Δ))` amortized work bound, Thms 7–9).
//!
//! ## Structure (§2.2, §3)
//!
//! Edges carry levels `1..=L`, `L = ⌈lg n⌉` (level *indices* `0..L` in
//! code). `G_i` is the subgraph of edges with level ≤ `i`; a spanning
//! forest `F_i` of every `G_i` is maintained as a batch-parallel Euler tour
//! forest (`dyncon-ett`), with `F_1 ⊆ F_2 ⊆ … ⊆ F_L`. Two invariants are
//! maintained (and checked by [`BatchDynamicConnectivity::check_invariants`]):
//!
//! 1. components of `G_i` have at most `2^i` vertices;
//! 2. `F_L` is a minimum spanning forest with respect to edge levels.
//!
//! Non-tree edges live in per-(vertex, level) adjacency arrays
//! (Appendix 8) mirrored into the forests' augmented counts (Appendix 9).

pub mod adjacency;
pub mod delete;
pub mod edges;
pub mod export;
pub mod insert;
pub mod search_interleaved;
pub mod search_simple;
pub mod stats;
pub mod validate;

use adjacency::AdjacencyStore;
use dyncon_ett::EulerTourForest;
use edges::EdgeIndex;
pub use stats::Stats;

/// Which replacement-edge search runs per level during deletions.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DeletionAlgorithm {
    /// Algorithm 4, `ParallelLevelSearch`: doubling restarts every round.
    Simple,
    /// Algorithm 5, `InterleavedLevelSearch`: one doubling sequence per
    /// level with deferred tree insertion and deferred pushes (the
    /// improved work bound of §4.3).
    Interleaved,
}

/// The paper's batch-dynamic connectivity structure.
///
/// ```
/// use dyncon_core::BatchDynamicConnectivity;
///
/// let mut g = BatchDynamicConnectivity::new(6);
/// g.batch_insert(&[(0, 1), (1, 2), (2, 0), (4, 5)]);
/// assert_eq!(g.batch_connected(&[(0, 2), (0, 4)]), vec![true, false]);
///
/// // Deleting a cycle edge keeps the component connected: the structure
/// // finds the replacement edge on its own.
/// g.batch_delete(&[(1, 2)]);
/// assert!(g.connected(1, 2));
/// assert_eq!(g.num_components(), 3); // {0,1,2}, {4,5}, {3}
/// ```
pub struct BatchDynamicConnectivity {
    n: usize,
    num_levels: usize,
    /// `levels[li]` is the forest `F_{li+1}` of `G_{li+1}`.
    pub(crate) levels: Vec<EulerTourForest>,
    pub(crate) adj: AdjacencyStore,
    pub(crate) edges: EdgeIndex,
    pub(crate) algo: DeletionAlgorithm,
    pub(crate) stats: Stats,
    /// When true, Algorithm 4 scans all non-tree edges at once instead of
    /// doubling (the E9 ablation knob; never an asymptotic win).
    pub scan_all_ablation: bool,
}

impl BatchDynamicConnectivity {
    /// Empty graph over `n` vertices using the improved deletion algorithm.
    pub fn new(n: usize) -> Self {
        Self::with_algorithm(n, DeletionAlgorithm::Interleaved)
    }

    /// Empty graph with an explicit deletion algorithm.
    pub fn with_algorithm(n: usize, algo: DeletionAlgorithm) -> Self {
        assert!(n >= 1, "need at least one vertex");
        assert!(n <= u32::MAX as usize / 2, "vertex ids must fit u32");
        let num_levels = (usize::BITS - (n - 1).leading_zeros()).max(1) as usize;
        let levels = (0..num_levels)
            .map(|li| EulerTourForest::new(n, 0x9e37_79b9 ^ (li as u64) << 32 | n as u64))
            .collect();
        Self {
            n,
            num_levels,
            levels,
            adj: AdjacencyStore::new(n),
            edges: EdgeIndex::new(),
            algo,
            stats: Stats::default(),
            scan_all_ablation: false,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of levels `L = max(1, ⌈lg n⌉)`.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Index of the top level (`L - 1`; level `L` in paper terms).
    pub(crate) fn top(&self) -> usize {
        self.num_levels - 1
    }

    /// Number of edges currently in the graph.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of connected components (isolated vertices count).
    pub fn num_components(&self) -> usize {
        self.n - self.levels[self.top()].num_edges()
    }

    /// Size of the component containing `v`.
    pub fn component_size(&self, v: u32) -> u64 {
        self.levels[self.top()].component_size(v)
    }

    /// True if the edge `{u,v}` is currently in the graph.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        u != v && self.edges.contains(u, v)
    }

    /// Operation statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Reset operation statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Algorithm 1: answer a batch of connectivity queries against `F_L`.
    pub fn batch_connected(&mut self, pairs: &[(u32, u32)]) -> Vec<bool> {
        self.stats.queries += pairs.len() as u64;
        let top = self.top();
        self.levels[top].batch_connected(pairs)
    }

    /// Single connectivity query.
    pub fn connected(&self, u: u32, v: u32) -> bool {
        self.levels[self.top()].connected(u, v)
    }

    /// Convenience single-edge insert; returns false if it was a duplicate
    /// or a self-loop.
    pub fn insert(&mut self, u: u32, v: u32) -> bool {
        self.batch_insert(&[(u, v)]) == 1
    }

    /// Convenience single-edge delete; returns false if absent.
    pub fn delete(&mut self, u: u32, v: u32) -> bool {
        self.batch_delete(&[(u, v)]) == 1
    }

    /// Normalize a user batch: order endpoints, drop self loops, dedup.
    pub(crate) fn normalize(batch: &[(u32, u32)]) -> Vec<(u32, u32)> {
        let mut es: Vec<(u32, u32)> = batch
            .iter()
            .filter(|&&(u, v)| u != v)
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect();
        dyncon_primitives::sort_dedup(&mut es);
        es
    }
}
