//! Algorithm 2: batch insertion.
//!
//! New edges enter at the top level. Treating each current component as a
//! contracted vertex, a static spanning forest over the batch determines
//! which edges increase connectivity (they become tree edges of `F_L`);
//! the rest become level-`L` non-tree edges. `O(k lg(1 + n/k))` expected
//! work and `O(lg n)` depth w.h.p. (Theorem 4).

use crate::adjacency::VertexBatch;
use crate::BatchDynamicConnectivity;
use dyncon_primitives::{
    pack, pack_by, par_expand2, par_map_collect, par_tabulate, semisort_pairs,
};
use dyncon_spanning::spanning_forest_sparse;

impl BatchDynamicConnectivity {
    /// Insert a batch of edges. Self-loops, duplicates within the batch,
    /// and edges already present are ignored. Returns the number of edges
    /// actually inserted.
    ///
    /// Every phase is a parallel combinator (map / pack / expand /
    /// semisort) over the deterministic normalized edge order, so the
    /// resulting structure is byte-identical across thread counts.
    pub fn batch_insert(&mut self, batch: &[(u32, u32)]) -> usize {
        let normalized = Self::normalize(batch);
        // Parallel dedup against the current edge set (the paper's
        // dictionary lookup phase).
        let es = pack_by(&normalized, |&(u, v)| {
            assert!((v as usize) < self.n, "vertex {v} out of range");
            !self.edges.contains(u, v)
        });
        if es.is_empty() {
            return 0;
        }
        let top = self.top();
        let k = es.len();

        // Lines 4-5: contracted spanning forest over component reps.
        let flat: Vec<u32> = par_expand2(&es, |&(u, v)| [u, v]);
        let reps = self.levels[top].batch_find_rep(&flat);
        let rep_pairs: Vec<(u64, u64)> = par_tabulate(k, |i| (reps[2 * i], reps[2 * i + 1]));
        let rf = spanning_forest_sparse(&rep_pairs);

        // Record all edges at the top level with their tree status.
        let slots = self.edges.insert_batch(&es, top, &rf.chosen);

        // Lines 6-8: promote the forest edges into F_L.
        let tree_edges: Vec<(u32, u32)> = pack(&es, &rf.chosen);
        if !tree_edges.is_empty() {
            let flags = vec![true; tree_edges.len()];
            self.levels[top].batch_link(&tree_edges, &flags);
        }

        // Line 3: the rest join the level-L adjacency structure.
        let nontree_flags: Vec<bool> = par_map_collect(&rf.chosen, |&c| !c);
        let nontree_slots: Vec<u32> = pack(&slots, &nontree_flags);
        self.add_nontree_at(top, &nontree_slots);

        self.stat(|s| s.edges_inserted += k as u64);
        k
    }

    /// Insert `slots` into the level-`li` adjacency arrays of both
    /// endpoints and refresh the forest's non-tree counts.
    pub(crate) fn add_nontree_at(&mut self, li: usize, slots: &[u32]) {
        if slots.is_empty() {
            return;
        }
        let groups = self.vertex_groups(li, slots);
        self.adj.insert_grouped(&groups, &self.edges);
        self.refresh_counts(li, &groups);
    }

    /// Remove `slots` from the level-`li` adjacency arrays of both
    /// endpoints and refresh the forest's non-tree counts.
    pub(crate) fn remove_nontree_at(&mut self, li: usize, slots: &[u32]) {
        if slots.is_empty() {
            return;
        }
        let groups = self.vertex_groups(li, slots);
        self.adj.remove_grouped(&groups, &self.edges);
        self.refresh_counts(li, &groups);
    }

    /// Both-endpoint occurrences of `slots` grouped by vertex (the
    /// Algorithm 2 line-3 semisort, endpoint fan-out and group extraction
    /// all parallel; the semisort's canonical within-group order makes the
    /// adjacency array layout thread-count independent).
    fn vertex_groups(&self, li: usize, slots: &[u32]) -> Vec<VertexBatch> {
        let mut occ: Vec<(u32, u32)> = par_expand2(slots, |&s| {
            let (u, v) = self.edges.endpoints(s);
            [(u, s), (v, s)]
        });
        let ranges = semisort_pairs(&mut occ);
        par_map_collect(&ranges, |(vertex, range)| VertexBatch {
            vertex: *vertex,
            level: li as u8,
            slots: occ[range.clone()].iter().map(|&(_, s)| s).collect(),
        })
    }

    /// Push the adjacency lengths of the touched vertices into the
    /// forest's augmented counts (Appendix 9 / Lemma 11 bookkeeping).
    fn refresh_counts(&mut self, li: usize, groups: &[VertexBatch]) {
        let adj = &self.adj;
        let updates: Vec<(u32, u64)> =
            par_map_collect(groups, |g| (g.vertex, adj.len(g.vertex, li as u8) as u64));
        self.levels[li].set_nontree_counts(&updates);
    }
}

#[cfg(test)]
mod tests {
    use crate::BatchDynamicConnectivity;

    #[test]
    fn insert_connects_components() {
        let mut g = BatchDynamicConnectivity::new(8);
        assert_eq!(g.batch_insert(&[(0, 1), (2, 3)]), 2);
        assert!(g.connected(0, 1));
        assert!(!g.connected(0, 2));
        assert_eq!(g.num_components(), 6);
        assert_eq!(g.batch_insert(&[(1, 2)]), 1);
        assert!(g.connected(0, 3));
        assert_eq!(g.num_components(), 5);
    }

    #[test]
    fn redundant_edges_become_nontree() {
        let mut g = BatchDynamicConnectivity::new(4);
        assert_eq!(g.batch_insert(&[(0, 1), (1, 2), (0, 2)]), 3);
        assert_eq!(g.num_edges(), 3);
        // Spanning forest keeps exactly 2 of the 3 triangle edges as tree.
        assert_eq!(g.num_components(), 2);
        assert!(g.connected(0, 2));
    }

    #[test]
    fn duplicates_and_loops_ignored() {
        let mut g = BatchDynamicConnectivity::new(4);
        assert_eq!(g.batch_insert(&[(1, 1)]), 0);
        assert_eq!(g.batch_insert(&[(0, 1), (1, 0), (0, 1)]), 1);
        assert_eq!(g.batch_insert(&[(0, 1)]), 0);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn batch_with_chain_in_one_call() {
        let mut g = BatchDynamicConnectivity::new(64);
        let chain: Vec<(u32, u32)> = (0..63).map(|i| (i, i + 1)).collect();
        assert_eq!(g.batch_insert(&chain), 63);
        assert!(g.connected(0, 63));
        assert_eq!(g.num_components(), 1);
        assert_eq!(g.component_size(10), 64);
    }

    #[test]
    fn queries_batch() {
        let mut g = BatchDynamicConnectivity::new(6);
        g.batch_insert(&[(0, 1), (2, 3)]);
        assert_eq!(
            g.batch_connected(&[(0, 1), (1, 2), (3, 2), (4, 4), (4, 5)]),
            vec![true, false, true, true, false]
        );
        assert_eq!(g.stats().queries, 5);
    }
}
