//! Bulk read-out APIs: component labellings, members and forest exports.
//!
//! These are the interfaces downstream graph-analytics users actually
//! consume (the clustering primitive of \[52\] in the paper's motivation):
//! a full component labelling, the members of one cluster, and the
//! certifying spanning forest.

use crate::BatchDynamicConnectivity;
use dyncon_ett::Payload;
use dyncon_primitives::par_map_collect;

impl BatchDynamicConnectivity {
    /// A full component labelling: `labels[u] == labels[v]` iff `u` and
    /// `v` are connected. Labels are opaque (stable only until the next
    /// mutation). `O(n lg n)` expected work, `O(lg n)` depth.
    pub fn component_labels(&self) -> Vec<u64> {
        let top = self.top();
        let ids: Vec<u32> = (0..self.num_vertices() as u32).collect();
        par_map_collect(&ids, |&v| self.levels[top].find_rep(v))
    }

    /// Every vertex in `v`'s component (including `v`), in Euler tour
    /// order. `O(output)` after an `O(lg n)` locate.
    pub fn component_members(&self, v: u32) -> Vec<u32> {
        let top = self.top();
        self.levels[top]
            .tour(v)
            .into_iter()
            .filter_map(|p| match p {
                Payload::Loop(w) => Some(w),
                _ => None,
            })
            .collect()
    }

    /// The current spanning forest of the whole graph (the tree edges of
    /// `F_L` — a certificate of the connectivity structure).
    pub fn spanning_forest_edges(&self) -> Vec<(u32, u32)> {
        self.edges
            .live_slots()
            .into_iter()
            .filter(|&s| self.edges.is_tree(s))
            .map(|s| self.edges.endpoints(s))
            .collect()
    }

    /// All current edges (normalized, unordered).
    pub fn edge_list(&self) -> Vec<(u32, u32)> {
        self.edges
            .live_slots()
            .into_iter()
            .map(|s| self.edges.endpoints(s))
            .collect()
    }

    /// Histogram of component sizes, largest first (a cheap clustering
    /// summary: `[giant, …, 1, 1, 1]`).
    pub fn component_size_distribution(&self) -> Vec<u64> {
        let labels = self.component_labels();
        let mut counts: dyncon_primitives::FxHashMap<u64, u64> = Default::default();
        for l in labels {
            *counts.entry(l).or_default() += 1;
        }
        let mut sizes: Vec<u64> = counts.into_values().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }
}

#[cfg(test)]
mod tests {
    use crate::BatchDynamicConnectivity;

    fn setup() -> BatchDynamicConnectivity {
        let mut g = BatchDynamicConnectivity::new(8);
        g.batch_insert(&[(0, 1), (1, 2), (2, 0), (4, 5)]);
        g
    }

    #[test]
    fn labels_partition() {
        let g = setup();
        let l = g.component_labels();
        assert_eq!(l[0], l[1]);
        assert_eq!(l[1], l[2]);
        assert_eq!(l[4], l[5]);
        assert_ne!(l[0], l[4]);
        assert_ne!(l[3], l[6]);
    }

    #[test]
    fn members_are_exact() {
        let g = setup();
        let mut m = g.component_members(1);
        m.sort_unstable();
        assert_eq!(m, vec![0, 1, 2]);
        assert_eq!(g.component_members(7), vec![7]);
    }

    #[test]
    fn forest_certificate() {
        let g = setup();
        let f = g.spanning_forest_edges();
        // Triangle contributes 2 tree edges, pair contributes 1.
        assert_eq!(f.len(), 3);
        let mut all = g.edge_list();
        all.sort_unstable();
        assert_eq!(all, vec![(0, 1), (0, 2), (1, 2), (4, 5)]);
    }

    #[test]
    fn size_distribution() {
        let g = setup();
        assert_eq!(g.component_size_distribution(), vec![3, 2, 1, 1, 1]);
    }

    #[test]
    fn labels_track_mutations() {
        let mut g = setup();
        g.batch_delete(&[(0, 1), (1, 2), (2, 0)]);
        let l = g.component_labels();
        assert_ne!(l[0], l[1]);
        assert_ne!(l[1], l[2]);
        g.batch_insert(&[(0, 6)]);
        let l = g.component_labels();
        assert_eq!(l[0], l[6]);
    }
}
