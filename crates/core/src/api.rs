//! The workspace-wide API contract (`dyncon-api`) implemented for the
//! paper's structure: validated batch mutations, `&self` batch queries
//! and mixed-operation batches over [`BatchDynamicConnectivity`].
//!
//! The inherent methods stay the unchecked fast path; these impls are the
//! boundary that turns out-of-range vertex ids into typed
//! [`DynConError`]s before anything deeper can panic.

use crate::BatchDynamicConnectivity;
use dyncon_api::{
    validate_pairs, BatchDynamic, BuildFrom, Builder, Connectivity, DynConError, ExportEdges,
};

impl Connectivity for BatchDynamicConnectivity {
    fn backend_name(&self) -> &'static str {
        match self.algo {
            dyncon_api::DeletionAlgorithm::Simple => "batch-dynamic/simple",
            dyncon_api::DeletionAlgorithm::Interleaved => "batch-dynamic/interleaved",
        }
    }

    fn num_vertices(&self) -> usize {
        BatchDynamicConnectivity::num_vertices(self)
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        BatchDynamicConnectivity::connected(self, u, v)
    }

    fn batch_connected(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        BatchDynamicConnectivity::batch_connected(self, pairs)
    }

    fn num_components(&self) -> usize {
        BatchDynamicConnectivity::num_components(self)
    }

    fn component_size(&self, v: u32) -> u64 {
        BatchDynamicConnectivity::component_size(self, v)
    }
}

impl BatchDynamic for BatchDynamicConnectivity {
    fn batch_insert(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError> {
        validate_pairs(self.n, edges)?;
        Ok(BatchDynamicConnectivity::batch_insert(self, edges))
    }

    fn batch_delete(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError> {
        validate_pairs(self.n, edges)?;
        Ok(BatchDynamicConnectivity::batch_delete(self, edges))
    }

    fn check(&self) -> Result<(), String> {
        self.check_invariants()
    }
}

impl ExportEdges for BatchDynamicConnectivity {
    fn export_edges(&self) -> Vec<(u32, u32)> {
        // `edge_list` yields live slots in index order; normalize and
        // sort so the export is canonical (insertion-history free), as
        // the trait contract requires for checksummable snapshots.
        let mut edges: Vec<(u32, u32)> = self
            .edge_list()
            .into_iter()
            .map(|(u, v)| (u.min(v), u.max(v)))
            .collect();
        edges.sort_unstable();
        edges
    }
}

impl BuildFrom for BatchDynamicConnectivity {
    fn build_from(builder: &Builder) -> Result<Self, DynConError> {
        // Re-validate: `build_from` is public and `Builder`'s fields are
        // pub, so a caller can reach this without `Builder::build`.
        builder.validate()?;
        Ok(BatchDynamicConnectivity::from_builder(builder))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyncon_api::{DeletionAlgorithm, Op};

    #[test]
    fn mixed_batch_through_the_trait() {
        let mut g: BatchDynamicConnectivity = Builder::new(8).build().unwrap();
        let res = g
            .apply(&[
                Op::Insert(0, 1),
                Op::Insert(1, 2),
                Op::Query(0, 2),
                Op::Delete(0, 1),
                Op::Query(0, 2),
                Op::Insert(2, 0),
                Op::Query(0, 1),
            ])
            .unwrap();
        assert_eq!(res.inserted, 3);
        assert_eq!(res.deleted, 1);
        assert_eq!(res.answers, vec![true, false, true]);
        BatchDynamic::check(&g).unwrap();
    }

    #[test]
    fn out_of_range_is_an_error_not_a_panic() {
        let mut g: BatchDynamicConnectivity = Builder::new(4).build().unwrap();
        for ops in [
            vec![Op::Insert(0, 4)],
            vec![Op::Delete(4, 0)],
            vec![Op::Query(0, 99)],
        ] {
            let err = g.apply(&ops).unwrap_err();
            assert!(
                matches!(err, DynConError::VertexOutOfRange { .. }),
                "{ops:?}"
            );
        }
        // Nothing was applied.
        assert_eq!(g.num_edges(), 0);
        let err = BatchDynamic::batch_insert(&mut g, &[(0, 1), (2, 17)]).unwrap_err();
        assert_eq!(
            err,
            DynConError::VertexOutOfRange {
                vertex: 17,
                num_vertices: 4
            }
        );
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn apply_validation_is_atomic() {
        let mut g: BatchDynamicConnectivity = Builder::new(4).build().unwrap();
        // A valid insert before an invalid query: the batch must be
        // rejected wholesale.
        let err = g.apply(&[Op::Insert(0, 1), Op::Query(0, 4)]).unwrap_err();
        assert!(matches!(
            err,
            DynConError::VertexOutOfRange { vertex: 4, .. }
        ));
        assert_eq!(g.num_edges(), 0, "validation failure must not mutate");
    }

    #[test]
    fn export_edges_is_canonical() {
        use dyncon_api::ExportEdges;
        // Two different insertion histories of the same edge set.
        let mut a: BatchDynamicConnectivity = Builder::new(8).build().unwrap();
        a.apply(&[Op::Insert(3, 1), Op::Insert(0, 5), Op::Insert(5, 4)])
            .unwrap();
        let mut b: BatchDynamicConnectivity = Builder::new(8).build().unwrap();
        b.apply(&[
            Op::Insert(4, 5),
            Op::Insert(2, 6),
            Op::Insert(5, 0),
            Op::Delete(2, 6),
            Op::Insert(1, 3),
        ])
        .unwrap();
        let (ea, eb) = (a.export_edges(), b.export_edges());
        assert_eq!(ea, eb, "same edge set must export identical bytes");
        assert_eq!(ea, vec![(0, 5), (1, 3), (4, 5)], "normalized and sorted");
    }

    #[test]
    fn direct_build_from_revalidates() {
        // Regression: reached without `Builder::build`, an invalid vertex
        // count must be a typed error, not an integer-underflow panic in
        // the level computation.
        use dyncon_api::BuildFrom;
        match BatchDynamicConnectivity::build_from(&Builder::new(0)) {
            Err(DynConError::InvalidVertexCount { requested: 0 }) => {}
            other => panic!("expected InvalidVertexCount, got {:?}", other.err()),
        }
    }

    #[test]
    fn trait_objects_cover_both_algorithms() {
        let mut backends: Vec<Box<dyn BatchDynamic>> = vec![
            Box::new(
                Builder::new(6)
                    .algorithm(DeletionAlgorithm::Simple)
                    .build::<BatchDynamicConnectivity>()
                    .unwrap(),
            ),
            Box::new(
                Builder::new(6)
                    .algorithm(DeletionAlgorithm::Interleaved)
                    .build::<BatchDynamicConnectivity>()
                    .unwrap(),
            ),
        ];
        let script = [
            Op::Insert(0, 1),
            Op::Insert(1, 2),
            Op::Insert(2, 0),
            Op::Delete(1, 2),
            Op::Query(0, 2),
        ];
        let mut answers = Vec::new();
        for g in &mut backends {
            let res = g.apply(&script).unwrap();
            answers.push(res.answers);
            assert_eq!(g.num_components(), 4);
            assert_eq!(g.component_size(1), 3);
            g.check().unwrap();
        }
        assert_eq!(answers[0], answers[1]);
    }
}
