//! Algorithm 4: `ParallelLevelSearch` — the simple parallel replacement
//! search (§3.3).
//!
//! Rounds repeat until no active piece remains. Within a round every
//! active piece runs a doubling search (phases `w = 0, 1, …` examining the
//! first `2^w` non-tree edge occurrences) until it finds a replacement or
//! exhausts its edges. We run the per-piece doubling phases globally
//! synchronized — all pieces at phase `w` together — so that pushes can be
//! applied as deduplicated batch phases; each piece still performs exactly
//! the paper's fetch/check/push sequence, so the charging arguments of
//! Theorem 6 are unchanged. Cross-piece push conflicts cannot occur:
//! a non-replacement candidate always has both endpoints inside the
//! fetching piece, so no other piece can fetch it.
//!
//! The round ends with the oracle-output processing of lines 22-30:
//! a spanning forest over the found replacement edges (on the contracted
//! piece graph) is committed as tree edges, and the piece set is
//! recomputed.
//!
//! **Parallelism and determinism.** Every doubling phase fans the
//! fetch-and-check work out over all searching pieces at once
//! (`par_map_collect` below), and the phase's pushes are applied as one
//! deduplicated batch at the barrier. The pieces' fetch results depend
//! only on adjacency-array order (canonical by the semisort contract),
//! and the committed replacement set comes from the deterministic
//! spanning forest, so the whole search — like the rest of the structure
//! — is byte-identical across thread counts.

use crate::delete::Comp;
use crate::BatchDynamicConnectivity;
use dyncon_primitives::{par_map_collect, sort_dedup};
use dyncon_spanning::spanning_forest_sparse;

/// Per-piece state inside one round's doubling search.
struct Doubling {
    comp: Comp,
    /// Total non-tree occurrences of the piece at round start.
    cmax: u64,
    /// Current phase exponent.
    w: u32,
}

impl BatchDynamicConnectivity {
    /// One level of Algorithm 4. Returns the handles deferred to the next
    /// level (the returned `D`); found tree edges are appended to
    /// `s_slots`.
    pub(crate) fn level_search_simple(
        &mut self,
        li: usize,
        c_handles: &[u32],
        s_slots: &mut Vec<u32>,
    ) -> Vec<u32> {
        let prep = self.prepare_level(li, c_handles, s_slots);
        let mut deferred = prep.deferred;
        let mut active = prep.active;
        let mut phases_this_level = 0u64;

        // Line 6: while |C| > 0.
        while !active.is_empty() {
            self.stat(|s| s.rounds += 1);
            // ---- Lines 8-21: synchronized doubling over the pieces. ----
            let mut searching: Vec<Doubling> = Vec::new();
            for comp in active.drain(..) {
                let cmax = self.levels[li].nontree_total(comp.handle);
                if cmax == 0 {
                    // Exhausted before starting: straight to D (the paper's
                    // loop guard `2^w < 2·cmax` never admits it).
                    deferred.push(comp.handle);
                } else {
                    searching.push(Doubling { comp, cmax, w: 0 });
                }
            }
            // Pieces that find a replacement this round (rep, handle, slot).
            let mut found: Vec<(Comp, u32)> = Vec::new();
            while !searching.is_empty() {
                self.stat(|s| s.phases += 1);
                phases_this_level += 1;
                // Fetch and check in parallel (read-only).
                let results: Vec<(Option<u32>, Vec<u32>, u64)> =
                    par_map_collect(&searching, |st| {
                        let csz = if self.scan_all_ablation {
                            st.cmax
                        } else {
                            (1u64 << st.w).min(st.cmax)
                        };
                        let occs = self.fetch_occurrences(li, st.comp.handle, csz);
                        // First replacement occurrence, if any: an edge
                        // whose endpoint representatives differ.
                        let mut hit: Option<u32> = None;
                        let mut prefix_end = occs.len();
                        for (i, &slot) in occs.iter().enumerate() {
                            let (x, y) = self.edges.endpoints(slot);
                            if self.levels[li].find_rep(x) != self.levels[li].find_rep(y) {
                                hit = Some(slot);
                                prefix_end = i;
                                break;
                            }
                        }
                        let examined = occs.len() as u64;
                        (hit, occs[..prefix_end].to_vec(), examined)
                    });
                // Apply phase results at the barrier.
                let mut push_now: Vec<u32> = Vec::new();
                let mut still = Vec::with_capacity(searching.len());
                for (st, (hit, prefix, examined)) in searching.into_iter().zip(results) {
                    self.stat(|s| s.edges_examined += examined);
                    let csz = if self.scan_all_ablation {
                        st.cmax
                    } else {
                        (1u64 << st.w).min(st.cmax)
                    };
                    if let Some(slot) = hit {
                        // Lines 14-16: push the prefix before the first
                        // replacement; the piece leaves the doubling.
                        push_now.extend_from_slice(&prefix);
                        found.push((st.comp, slot));
                    } else if csz >= st.cmax {
                        // Lines 17-20: exhausted; push everything and defer.
                        push_now.extend_from_slice(&prefix);
                        deferred.push(st.comp.handle);
                    } else {
                        still.push(Doubling {
                            comp: st.comp,
                            cmax: st.cmax,
                            w: st.w + 1,
                        });
                    }
                }
                // Occurrence lists may contain an edge twice (both
                // endpoints inside the piece): dedup before pushing.
                sort_dedup(&mut push_now);
                if li == 0 {
                    debug_assert!(push_now.is_empty(), "no pushes below the bottom level");
                } else {
                    self.push_nontree_down(li, &push_now);
                }
                searching = still;
            }

            if found.is_empty() {
                break;
            }
            // ---- Lines 22-30: commit replacements. ----
            let mut slots: Vec<u32> = found.iter().map(|&(_, s)| s).collect();
            sort_dedup(&mut slots);
            let pairs: Vec<(u64, u64)> = par_map_collect(&slots, |&s| {
                let (x, y) = self.edges.endpoints(s);
                (self.levels[li].find_rep(x), self.levels[li].find_rep(y))
            });
            let rf = spanning_forest_sparse(&pairs);
            let chosen: Vec<u32> = slots
                .iter()
                .zip(&rf.chosen)
                .filter_map(|(&s, &c)| c.then_some(s))
                .collect();
            self.promote_to_tree(li, &chosen, s_slots);

            // Line 28-30: recompute the surviving pieces' representatives
            // and re-partition by size.
            let handles: Vec<u32> = found.iter().map(|(c, _)| c.handle).collect();
            let reps = self.levels[li].batch_find_rep(&handles);
            let mut pairs: Vec<(u64, u32)> = reps.into_iter().zip(handles).collect();
            pairs.sort_unstable();
            pairs.dedup_by_key(|p| p.0);
            let threshold = 1u64 << li;
            for (rep, handle) in pairs {
                let size = self.levels[li].component_size(handle);
                if size <= threshold {
                    active.push(Comp { handle, rep, size });
                } else {
                    deferred.push(handle);
                }
            }
            // Pieces that merged through just-promoted level-`li` tree
            // edges and remain active must have those edges pushed down
            // before their interior is searched again (see
            // `push_level_tree_edges`).
            self.push_level_tree_edges(li, &active);
        }
        self.stat(|s| s.max_phases_in_level = s.max_phases_in_level.max(phases_this_level));
        deferred
    }
}
