//! The edge dictionary `ED` (§3, "Data Structures"): every edge of the
//! graph, its HDT level, tree/non-tree status, and its positions inside the
//! per-endpoint adjacency arrays of Appendix 8.
//!
//! Records live in a structure-of-arrays slab addressed by dense slots; a
//! phase-concurrent dictionary maps edge keys to slots. All record fields
//! are atomics because different parallel phases legitimately update
//! different fields of the *same* edge from different tasks (e.g. the two
//! endpoints' adjacency compactions move the same edge in two different
//! arrays).

use dyncon_primitives::{par_for, par_map_collect, par_tabulate, ConcurrentDict};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Pack an undirected edge into a dictionary key.
#[inline]
pub fn edge_key(u: u32, v: u32) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

/// Unpack a dictionary key.
#[inline]
pub fn key_endpoints(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

const TREE_BIT: u32 = 1;

/// Slab + dictionary of all current edges.
pub struct EdgeIndex {
    dict: ConcurrentDict,
    /// bit 0: is_tree; bits 8..16: level index.
    info: Vec<AtomicU32>,
    /// Position within the smaller endpoint's adjacency array.
    pos_min: Vec<AtomicU32>,
    /// Position within the larger endpoint's adjacency array.
    pos_max: Vec<AtomicU32>,
    /// Reverse map slot → key (`u64::MAX` when free).
    keys: Vec<AtomicU64>,
    free: Vec<u32>,
    len: usize,
}

impl EdgeIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self {
            dict: ConcurrentDict::with_capacity(64),
            info: Vec::new(),
            pos_min: Vec::new(),
            pos_max: Vec::new(),
            keys: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live edges.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no edges exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot of an edge, if present.
    #[inline]
    pub fn slot_of(&self, u: u32, v: u32) -> Option<u32> {
        self.dict.get(edge_key(u, v)).map(|s| s as u32)
    }

    /// True if the edge is present.
    pub fn contains(&self, u: u32, v: u32) -> bool {
        self.slot_of(u, v).is_some()
    }

    /// Endpoints of the edge in `slot` (min, max).
    #[inline]
    pub fn endpoints(&self, slot: u32) -> (u32, u32) {
        key_endpoints(self.keys[slot as usize].load(Ordering::Relaxed))
    }

    /// The endpoint of `slot` that is not `v`.
    #[inline]
    pub fn other_endpoint(&self, slot: u32, v: u32) -> u32 {
        let (a, b) = self.endpoints(slot);
        if a == v {
            b
        } else {
            debug_assert_eq!(b, v);
            a
        }
    }

    /// Level index of the edge.
    #[inline]
    pub fn level(&self, slot: u32) -> usize {
        ((self.info[slot as usize].load(Ordering::Relaxed) >> 8) & 0xff) as usize
    }

    /// Set the level index.
    #[inline]
    pub fn set_level(&self, slot: u32, level: usize) {
        debug_assert!(level < 256);
        let old = self.info[slot as usize].load(Ordering::Relaxed);
        self.info[slot as usize].store((old & !0xff00) | ((level as u32) << 8), Ordering::Relaxed);
    }

    /// Is the edge currently a tree edge?
    #[inline]
    pub fn is_tree(&self, slot: u32) -> bool {
        self.info[slot as usize].load(Ordering::Relaxed) & TREE_BIT != 0
    }

    /// Set the tree bit.
    #[inline]
    pub fn set_tree(&self, slot: u32, tree: bool) {
        let old = self.info[slot as usize].load(Ordering::Relaxed);
        let new = if tree {
            old | TREE_BIT
        } else {
            old & !TREE_BIT
        };
        self.info[slot as usize].store(new, Ordering::Relaxed);
    }

    /// Adjacency position of `slot` at endpoint `v`.
    #[inline]
    pub fn pos(&self, slot: u32, v: u32) -> u32 {
        let (a, _) = self.endpoints(slot);
        if v == a {
            self.pos_min[slot as usize].load(Ordering::Relaxed)
        } else {
            self.pos_max[slot as usize].load(Ordering::Relaxed)
        }
    }

    /// Record the adjacency position of `slot` at endpoint `v`.
    #[inline]
    pub fn set_pos(&self, slot: u32, v: u32, p: u32) {
        let (a, _) = self.endpoints(slot);
        if v == a {
            self.pos_min[slot as usize].store(p, Ordering::Relaxed);
        } else {
            self.pos_max[slot as usize].store(p, Ordering::Relaxed);
        }
    }

    /// Insert a batch of *new, distinct, normalized* edges; returns their
    /// slots. `O(k)` expected work.
    pub fn insert_batch(
        &mut self,
        edges: &[(u32, u32)],
        level: usize,
        is_tree: &[bool],
    ) -> Vec<u32> {
        let k = edges.len();
        let mut slots = Vec::with_capacity(k);
        for _ in 0..k {
            if let Some(s) = self.free.pop() {
                slots.push(s);
            } else {
                let s = self.info.len() as u32;
                self.info.push(AtomicU32::new(0));
                self.pos_min.push(AtomicU32::new(0));
                self.pos_max.push(AtomicU32::new(0));
                self.keys.push(AtomicU64::new(u64::MAX));
                slots.push(s);
            }
        }
        par_for(k, |i| {
            let (u, v) = edges[i];
            let s = slots[i] as usize;
            self.keys[s].store(edge_key(u, v), Ordering::Relaxed);
            let info = ((level as u32) << 8) | (is_tree[i] as u32);
            self.info[s].store(info, Ordering::Relaxed);
            self.pos_min[s].store(u32::MAX, Ordering::Relaxed);
            self.pos_max[s].store(u32::MAX, Ordering::Relaxed);
        });
        let entries: Vec<(u64, u64)> = par_tabulate(k, |i| {
            let (u, v) = edges[i];
            (edge_key(u, v), slots[i] as u64)
        });
        self.dict.insert_batch(&entries);
        self.len += k;
        slots
    }

    /// Remove a batch of slots (must be live and distinct).
    pub fn remove_batch(&mut self, slots: &[u32]) {
        let keys: Vec<u64> =
            par_map_collect(slots, |&s| self.keys[s as usize].load(Ordering::Relaxed));
        let removed = self.dict.remove_batch(&keys);
        debug_assert_eq!(removed, slots.len(), "removing absent edge slots");
        par_for(slots.len(), |i| {
            self.keys[slots[i] as usize].store(u64::MAX, Ordering::Relaxed);
        });
        self.free.extend_from_slice(slots);
        self.len -= slots.len();
    }

    /// All live slots (diagnostic / validation use).
    pub fn live_slots(&self) -> Vec<u32> {
        (0..self.keys.len() as u32)
            .filter(|&s| self.keys[s as usize].load(Ordering::Relaxed) != u64::MAX)
            .collect()
    }
}

impl Default for EdgeIndex {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut ei = EdgeIndex::new();
        let slots = ei.insert_batch(&[(1, 2), (5, 3)], 7, &[true, false]);
        assert_eq!(ei.len(), 2);
        assert_eq!(ei.slot_of(2, 1), Some(slots[0]));
        assert_eq!(ei.slot_of(3, 5), Some(slots[1]));
        assert!(ei.is_tree(slots[0]));
        assert!(!ei.is_tree(slots[1]));
        assert_eq!(ei.level(slots[0]), 7);
        assert_eq!(ei.endpoints(slots[1]), (3, 5));
        assert_eq!(ei.other_endpoint(slots[1], 3), 5);
        ei.remove_batch(&[slots[0]]);
        assert_eq!(ei.len(), 1);
        assert_eq!(ei.slot_of(1, 2), None);
        assert!(ei.contains(5, 3));
    }

    #[test]
    fn slot_reuse() {
        let mut ei = EdgeIndex::new();
        let s1 = ei.insert_batch(&[(0, 1)], 0, &[false])[0];
        ei.remove_batch(&[s1]);
        let s2 = ei.insert_batch(&[(2, 3)], 1, &[true])[0];
        assert_eq!(s1, s2, "slot recycled");
        assert_eq!(ei.endpoints(s2), (2, 3));
        assert_eq!(ei.level(s2), 1);
    }

    #[test]
    fn level_and_tree_mutations() {
        let mut ei = EdgeIndex::new();
        let s = ei.insert_batch(&[(4, 9)], 12, &[false])[0];
        ei.set_level(s, 11);
        assert_eq!(ei.level(s), 11);
        assert!(!ei.is_tree(s));
        ei.set_tree(s, true);
        assert!(ei.is_tree(s));
        assert_eq!(ei.level(s), 11, "tree bit does not clobber level");
        ei.set_tree(s, false);
        assert!(!ei.is_tree(s));
    }

    #[test]
    fn positions_per_endpoint() {
        let mut ei = EdgeIndex::new();
        let s = ei.insert_batch(&[(2, 7)], 0, &[false])[0];
        ei.set_pos(s, 2, 13);
        ei.set_pos(s, 7, 99);
        assert_eq!(ei.pos(s, 2), 13);
        assert_eq!(ei.pos(s, 7), 99);
    }
}
