//! The per-level adjacency structure of Appendix 8.
//!
//! For every vertex and level, a resizable array of the *non-tree* edges
//! (as slots into the [`crate::edges::EdgeIndex`]) with level equal to that
//! level and incident to that vertex. Supports batch insertion (append),
//! batch deletion (position-tracked swap-remove compaction) and fetching
//! the first `ℓ` entries — each `O(1)` amortized work per edge and
//! `O(lg n)` depth, exactly Lemma 9.
//!
//! Most vertices hold edges at very few levels at any time, so each vertex
//! keeps a short vector of `(level, array)` pairs instead of a dense
//! `levels × vertices` matrix (which would be `Θ(n lg n)` memory).
//!
//! Parallelism contract: mutating entry points take the batch *grouped by
//! vertex* and process groups in parallel — each group touches exactly one
//! vertex's lists plus per-edge atomic position fields, so groups are
//! data-disjoint.

use crate::edges::EdgeIndex;
use dyncon_primitives::{par_for, SyncSlice};

#[derive(Default)]
struct VertexAdj {
    /// `(level index, edge slots)`, unordered, linear-scanned (vertices
    /// rarely hold more than a couple of active levels).
    lists: Vec<(u8, Vec<u32>)>,
}

/// All per-(vertex, level) non-tree adjacency arrays.
pub struct AdjacencyStore {
    verts: Vec<VertexAdj>,
}

/// A batch of adjacency mutations for one vertex at one level.
pub struct VertexBatch {
    /// The vertex whose arrays are touched.
    pub vertex: u32,
    /// Level index of the arrays.
    pub level: u8,
    /// Edge slots to insert or remove.
    pub slots: Vec<u32>,
}

impl AdjacencyStore {
    /// Empty store over `n` vertices.
    pub fn new(n: usize) -> Self {
        let mut verts = Vec::with_capacity(n);
        verts.resize_with(n, VertexAdj::default);
        Self { verts }
    }

    /// Length of the `(v, level)` array.
    pub fn len(&self, v: u32, level: u8) -> usize {
        self.verts[v as usize]
            .lists
            .iter()
            .find(|(l, _)| *l == level)
            .map_or(0, |(_, a)| a.len())
    }

    /// First `take` slots of the `(v, level)` array.
    pub fn fetch(&self, v: u32, level: u8, take: usize) -> &[u32] {
        self.verts[v as usize]
            .lists
            .iter()
            .find(|(l, _)| *l == level)
            .map_or(&[][..], |(_, a)| &a[..take.min(a.len())])
    }

    /// Append the slots of each group to its `(vertex, level)` array,
    /// recording positions in the edge index. Groups must have distinct
    /// `(vertex, level)` pairs per vertex... distinct vertices guarantee
    /// disjointness; a vertex may appear once per level within one call.
    pub fn insert_grouped(&mut self, groups: &[VertexBatch], edges: &EdgeIndex) {
        // Group keys must be vertex-disjoint or level-disjoint; enforce the
        // simple (sufficient for all call sites) contract: one group per
        // (vertex, level), grouped upstream.
        debug_assert!(distinct_keys(groups));
        let verts = SyncSlice::new(&mut self.verts);
        par_for(groups.len(), |gi| {
            let g = &groups[gi];
            // SAFETY: groups have distinct (vertex, level) keys and only
            // vertex-`g.vertex` lists at level `g.level` are touched; two
            // groups with the same vertex but different levels mutate
            // different inner vectors but the same outer `lists` Vec, so we
            // additionally require distinct vertices (checked above).
            let va = unsafe { verts.get_mut(g.vertex as usize) };
            let arr = ensure_list(va, g.level);
            for &s in &g.slots {
                edges.set_pos(s, g.vertex, arr.len() as u32);
                arr.push(s);
            }
        });
    }

    /// Remove the slots of each group from its `(vertex, level)` array by
    /// position-tracked swap-removal (Appendix 8's compaction).
    pub fn remove_grouped(&mut self, groups: &[VertexBatch], edges: &EdgeIndex) {
        debug_assert!(distinct_keys(groups));
        let verts = SyncSlice::new(&mut self.verts);
        par_for(groups.len(), |gi| {
            let g = &groups[gi];
            // SAFETY: as in insert_grouped.
            let va = unsafe { verts.get_mut(g.vertex as usize) };
            let arr = ensure_list(va, g.level);
            for &s in &g.slots {
                let p = edges.pos(s, g.vertex) as usize;
                debug_assert!(p < arr.len() && arr[p] == s, "stale adjacency position");
                let last = arr.pop().unwrap();
                if p < arr.len() {
                    arr[p] = last;
                    edges.set_pos(last, g.vertex, p as u32);
                }
            }
            va.lists.retain(|(_, a)| !a.is_empty());
        });
    }

    /// Sum of array lengths (diagnostics): each live non-tree edge is
    /// counted twice.
    pub fn total_entries(&self) -> usize {
        self.verts
            .iter()
            .map(|v| v.lists.iter().map(|(_, a)| a.len()).sum::<usize>())
            .sum()
    }

    /// All `(level, slot)` entries at a vertex (validation use).
    pub fn entries_of(&self, v: u32) -> Vec<(u8, u32)> {
        let mut out = Vec::new();
        for (l, arr) in &self.verts[v as usize].lists {
            for &s in arr {
                out.push((*l, s));
            }
        }
        out
    }
}

fn ensure_list(va: &mut VertexAdj, level: u8) -> &mut Vec<u32> {
    if let Some(i) = va.lists.iter().position(|(l, _)| *l == level) {
        &mut va.lists[i].1
    } else {
        va.lists.push((level, Vec::new()));
        &mut va.lists.last_mut().unwrap().1
    }
}

fn distinct_keys(groups: &[VertexBatch]) -> bool {
    let mut keys: Vec<u32> = groups.iter().map(|g| g.vertex).collect();
    keys.sort_unstable();
    keys.windows(2).all(|w| w[0] != w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AdjacencyStore, EdgeIndex, Vec<u32>) {
        let mut ei = EdgeIndex::new();
        let edges = [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3)];
        let slots = ei.insert_batch(&edges, 3, &[false; 5]);
        (AdjacencyStore::new(4), ei, slots)
    }

    #[test]
    fn insert_fetch_len() {
        let (mut adj, ei, s) = setup();
        adj.insert_grouped(
            &[
                VertexBatch {
                    vertex: 0,
                    level: 3,
                    slots: vec![s[0], s[1], s[2]],
                },
                VertexBatch {
                    vertex: 1,
                    level: 3,
                    slots: vec![s[0], s[3], s[4]],
                },
            ],
            &ei,
        );
        assert_eq!(adj.len(0, 3), 3);
        assert_eq!(adj.len(1, 3), 3);
        assert_eq!(adj.len(0, 2), 0);
        assert_eq!(adj.fetch(0, 3, 2), &[s[0], s[1]]);
        assert_eq!(adj.fetch(0, 3, 99), &[s[0], s[1], s[2]]);
        // Positions recorded per endpoint.
        assert_eq!(ei.pos(s[0], 0), 0);
        assert_eq!(ei.pos(s[0], 1), 0);
        assert_eq!(ei.pos(s[4], 1), 2);
    }

    #[test]
    fn swap_remove_updates_positions() {
        let (mut adj, ei, s) = setup();
        adj.insert_grouped(
            &[VertexBatch {
                vertex: 0,
                level: 3,
                slots: vec![s[0], s[1], s[2]],
            }],
            &ei,
        );
        // Remove the first: the last (s[2]) moves into its place.
        adj.remove_grouped(
            &[VertexBatch {
                vertex: 0,
                level: 3,
                slots: vec![s[0]],
            }],
            &ei,
        );
        assert_eq!(adj.len(0, 3), 2);
        assert_eq!(adj.fetch(0, 3, 9), &[s[2], s[1]]);
        assert_eq!(ei.pos(s[2], 0), 0, "moved edge position retargeted");
        // Remove remaining two at once.
        adj.remove_grouped(
            &[VertexBatch {
                vertex: 0,
                level: 3,
                slots: vec![s[1], s[2]],
            }],
            &ei,
        );
        assert_eq!(adj.len(0, 3), 0);
        assert_eq!(adj.total_entries(), 0);
    }

    #[test]
    fn multiple_levels_per_vertex() {
        let (mut adj, mut ei, s) = setup();
        let extra = ei.insert_batch(&[(0, 9)], 1, &[false])[0];
        adj.insert_grouped(
            &[VertexBatch {
                vertex: 0,
                level: 3,
                slots: vec![s[0]],
            }],
            &ei,
        );
        adj.insert_grouped(
            &[VertexBatch {
                vertex: 0,
                level: 1,
                slots: vec![extra],
            }],
            &ei,
        );
        assert_eq!(adj.len(0, 3), 1);
        assert_eq!(adj.len(0, 1), 1);
        let mut entries = adj.entries_of(0);
        entries.sort_unstable();
        assert_eq!(entries, vec![(1, extra), (3, s[0])]);
    }

    #[test]
    fn parallel_disjoint_groups() {
        let mut ei = EdgeIndex::new();
        let n = 500u32;
        let pairs: Vec<(u32, u32)> = (0..n).map(|v| (v, v + n)).collect();
        let slots = ei.insert_batch(&pairs, 0, &vec![false; n as usize]);
        let mut adj = AdjacencyStore::new(2 * n as usize);
        let groups: Vec<VertexBatch> = (0..n)
            .map(|v| VertexBatch {
                vertex: v,
                level: 0,
                slots: vec![slots[v as usize]],
            })
            .collect();
        adj.insert_grouped(&groups, &ei);
        assert_eq!(adj.total_entries(), n as usize);
        adj.remove_grouped(&groups, &ei);
        assert_eq!(adj.total_entries(), 0);
    }
}
