//! Instrumentation counters.
//!
//! The paper's depth bounds (Theorems 5 and 7) are about numbers of
//! rounds/phases, which wall-clock time on a small machine can't expose
//! directly. These counters record the round/phase structure of every
//! deletion so experiment E3 can compare Algorithm 4's `O(lg² n)` phases
//! per level against Algorithm 5's `O(lg n)` rounds per level.

/// Cumulative operation statistics of a [`crate::BatchDynamicConnectivity`].
///
/// Under the workspace determinism contract every counter is a pure
/// function of the operation history — `PartialEq` lets the determinism
/// suite compare whole snapshots across thread counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Edges inserted (after dedup/filtering).
    pub edges_inserted: u64,
    /// Edges deleted (after dedup/filtering).
    pub edges_deleted: u64,
    /// Tree edges deleted (those that trigger replacement searches).
    pub tree_edges_deleted: u64,
    /// Connectivity queries answered. Snapshot-only: the live counter is
    /// a relaxed atomic beside the struct (so `batch_connected` can take
    /// `&self`), and this field is filled in by
    /// [`crate::BatchDynamicConnectivity::stats`]; inside the structure
    /// it stays zero.
    pub queries: u64,
    /// Levels entered by replacement searches.
    pub levels_searched: u64,
    /// Search rounds executed (outer loop iterations of Algorithms 4/5).
    pub rounds: u64,
    /// Doubling phases executed (inner fetch-and-check steps; for
    /// Algorithm 5 rounds and phases coincide).
    pub phases: u64,
    /// Candidate non-tree edge occurrences fetched and examined.
    pub edges_examined: u64,
    /// Edge level decreases (non-tree pushes).
    pub nontree_pushes: u64,
    /// Edge level decreases (tree pushes, including the line-5 bulk push).
    pub tree_pushes: u64,
    /// Non-tree edges promoted to tree edges (replacements committed).
    pub replacements: u64,
    /// Largest number of phases observed within a single level search.
    pub max_phases_in_level: u64,
}

impl Stats {
    /// Reset all counters.
    pub fn reset(&mut self) {
        *self = Stats::default();
    }

    /// Total edge level decreases.
    pub fn total_pushes(&self) -> u64 {
        self.nontree_pushes + self.tree_pushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes() {
        let mut s = Stats {
            rounds: 5,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s.rounds, 0);
    }

    #[test]
    fn total_pushes_sums() {
        let s = Stats {
            nontree_pushes: 3,
            tree_pushes: 4,
            ..Default::default()
        };
        assert_eq!(s.total_pushes(), 7);
    }
}
