//! One construction path for every backend.

use crate::DynConError;

/// Largest supported vertex universe (ids must fit comfortably in `u32`;
/// the connectivity core also packs `(vertex, direction)` into 32 bits).
pub const MAX_VERTICES: usize = u32::MAX as usize / 2;

/// Which replacement-edge search the paper's structure runs per level
/// during deletions. Backends without a deletion search ignore it.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DeletionAlgorithm {
    /// Algorithm 4, `ParallelLevelSearch`: doubling restarts every round
    /// (work-efficient w.r.t. HDT, `O(lg⁴ n)` depth, Thms 5–6).
    Simple,
    /// Algorithm 5, `InterleavedLevelSearch`: one doubling sequence per
    /// level with deferred tree insertion and deferred pushes (`O(lg³ n)`
    /// depth and the improved `O(lg n · lg(1 + n/Δ))` amortized work
    /// bound, Thms 7–9).
    Interleaved,
}

/// Configuration for constructing any connectivity backend: vertex count
/// plus the knobs that used to be a per-backend constructor zoo
/// (`with_algorithm`, a public `scan_all_ablation` field, …).
///
/// Knobs a backend does not have are ignored by its [`BuildFrom`] impl,
/// so the same `Builder` value can configure a whole panel of backends
/// for a differential experiment.
///
/// ```
/// use dyncon_api::{BatchDynamic, Builder, Connectivity, DeletionAlgorithm, Op};
/// use dyncon_core::BatchDynamicConnectivity;
///
/// let mut g: BatchDynamicConnectivity = Builder::new(8)
///     .algorithm(DeletionAlgorithm::Simple)
///     .stats(true)
///     .build()?;
///
/// // One mixed batch: ingest a triangle, probe it, break it.
/// let result = g.apply(&[
///     Op::Insert(0, 1),
///     Op::Insert(1, 2),
///     Op::Insert(2, 0),
///     Op::Query(0, 2),
///     Op::Delete(0, 1),
///     Op::Query(0, 1), // still connected through 2
/// ])?;
/// assert_eq!(result.inserted, 3);
/// assert_eq!(result.deleted, 1);
/// assert_eq!(result.answers, vec![true, true]);
/// assert_eq!(g.num_components(), 6);
///
/// // Out-of-range vertices are typed errors, not deep panics.
/// assert!(g.apply(&[Op::Insert(0, 99)]).is_err());
/// # Ok::<(), dyncon_api::DynConError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Builder {
    /// Size of the (fixed) vertex universe; ids are `0..num_vertices`.
    pub num_vertices: usize,
    /// Replacement-search choice for backends that delete by level search.
    pub algorithm: DeletionAlgorithm,
    /// Collect operation statistics (rounds, phases, pushes, …).
    pub stats_enabled: bool,
    /// E9 ablation: scan all non-tree candidates at once instead of
    /// doubling. Never an asymptotic win; exists to quantify the doubling
    /// search's benefit.
    pub scan_all_ablation: bool,
}

impl Builder {
    /// Configuration for a graph over `num_vertices` vertices with the
    /// defaults: the improved deletion algorithm, stats on, no ablation.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            algorithm: DeletionAlgorithm::Interleaved,
            stats_enabled: true,
            scan_all_ablation: false,
        }
    }

    /// Choose the deletion algorithm.
    pub fn algorithm(mut self, algorithm: DeletionAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Toggle statistics collection.
    pub fn stats(mut self, enabled: bool) -> Self {
        self.stats_enabled = enabled;
        self
    }

    /// Toggle the scan-all ablation (see [`Builder::scan_all_ablation`]).
    pub fn scan_all(mut self, enabled: bool) -> Self {
        self.scan_all_ablation = enabled;
        self
    }

    /// Check the configuration without building anything.
    pub fn validate(&self) -> Result<(), DynConError> {
        if self.num_vertices == 0 || self.num_vertices > MAX_VERTICES {
            return Err(DynConError::InvalidVertexCount {
                requested: self.num_vertices,
            });
        }
        Ok(())
    }

    /// Construct a backend from this configuration.
    pub fn build<B: BuildFrom>(&self) -> Result<B, DynConError> {
        self.validate()?;
        B::build_from(self)
    }
}

/// Implemented by every backend constructible from a [`Builder`].
///
/// [`Builder::build`] validates before calling this, but `build_from` is
/// itself public (and the builder's fields are), so implementations must
/// re-run [`Builder::validate`] rather than assume a valid configuration.
pub trait BuildFrom: Sized {
    /// Construct from a configuration, validating it first.
    fn build_from(builder: &Builder) -> Result<Self, DynConError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_chaining() {
        let b = Builder::new(100)
            .algorithm(DeletionAlgorithm::Simple)
            .stats(false)
            .scan_all(true);
        assert_eq!(b.num_vertices, 100);
        assert_eq!(b.algorithm, DeletionAlgorithm::Simple);
        assert!(!b.stats_enabled);
        assert!(b.scan_all_ablation);
        assert!(b.validate().is_ok());
    }

    #[test]
    fn build_from_must_revalidate() {
        // Regression: `build_from` is reachable without `Builder::build`,
        // so a conforming impl must reject an invalid builder itself.
        struct Strict(usize);
        impl BuildFrom for Strict {
            fn build_from(b: &Builder) -> Result<Self, DynConError> {
                b.validate()?;
                Ok(Strict(b.num_vertices))
            }
        }
        assert!(Strict::build_from(&Builder::new(0)).is_err());
        assert_eq!(Strict::build_from(&Builder::new(3)).unwrap().0, 3);
    }

    #[test]
    fn rejects_bad_vertex_counts() {
        assert_eq!(
            Builder::new(0).validate(),
            Err(DynConError::InvalidVertexCount { requested: 0 })
        );
        assert!(Builder::new(MAX_VERTICES + 1).validate().is_err());
        assert!(Builder::new(1).validate().is_ok());
        assert!(Builder::new(MAX_VERTICES).validate().is_ok());
    }
}
