//! Typed errors surfaced at the API boundary.

use std::error::Error;
use std::fmt;

/// Everything that can go wrong at the connectivity API boundary.
///
/// These replace the seed repository's deep panics: an out-of-range vertex
/// used to index past the end of the Euler-tour forest's vertex table
/// several layers down; now it is rejected at the trait boundary with the
/// offending id and the valid range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DynConError {
    /// A vertex id was `>= num_vertices`. Vertex universes are fixed at
    /// construction time; ids are dense `0..num_vertices`.
    VertexOutOfRange {
        /// The offending id.
        vertex: u32,
        /// The size of the vertex universe (valid ids are `0..this`).
        num_vertices: usize,
    },
    /// The builder was asked for an unusable vertex count (`0`, or more
    /// than [`crate::MAX_VERTICES`]).
    InvalidVertexCount {
        /// The requested count.
        requested: usize,
    },
    /// The backend cannot perform this operation at all (e.g. deletions
    /// on an insert-only structure).
    Unsupported {
        /// The backend's name.
        backend: &'static str,
        /// The refused operation.
        operation: &'static str,
    },
    /// A serving frontend's admission queue is full: the request was
    /// rejected *before* being enqueued, so nothing about it will ever be
    /// applied. Retry after draining tickets (or use a blocking submit).
    Backpressure {
        /// The queue's request capacity that was exhausted.
        capacity: usize,
    },
    /// The serving frontend has shut down. On submission it means the
    /// request was rejected and never enqueued; on a ticket it means the
    /// service failed (e.g. the backend panicked) before the request's
    /// round could commit. After an orderly `close()`, requests accepted
    /// earlier still commit and their tickets resolve normally.
    ServiceClosed,
    /// A durable-storage operation (WAL append, fsync, snapshot write,
    /// recovery read) failed at the I/O layer. Carries the offending path
    /// and the OS error text; the underlying `io::Error` is not kept so
    /// the error stays `Clone + Eq` like every other variant.
    Storage {
        /// The file or directory the operation targeted.
        path: String,
        /// The I/O failure, as reported by the OS.
        message: String,
    },
    /// A versioned read asked for a [`crate::Version`] outside the
    /// retention window `[oldest, newest]` a serving layer keeps. Either
    /// the version has been evicted (too old), has not been committed
    /// yet (a `min_version` read-your-writes fence that ran ahead of the
    /// writer), or the window is empty — encoded as `oldest > newest`
    /// (see [`crate::EMPTY_WINDOW`]): view publication is disabled or
    /// nothing has committed.
    UnknownVersion {
        /// The version the caller asked for.
        requested: u64,
        /// Oldest version still retained.
        oldest: u64,
        /// Newest committed version.
        newest: u64,
    },
    /// Durable state failed validation: a checksum mismatch in the middle
    /// of the write-ahead log, a bad magic number, an undecodable record,
    /// or a round-sequence gap. Unlike a *tail* failure (which recovery
    /// drops silently as a torn final write), mid-log corruption means
    /// committed history is unreadable and recovery must not guess.
    Corrupt {
        /// The corrupt file.
        path: String,
        /// Byte offset of the record that failed validation.
        offset: u64,
        /// What exactly failed (checksum, magic, decode, sequence).
        detail: String,
    },
}

impl fmt::Display for DynConError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynConError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range: this structure has {num_vertices} vertices (ids 0..{num_vertices})"
            ),
            DynConError::InvalidVertexCount { requested } => write!(
                f,
                "invalid vertex count {requested}: need 1..={} vertices",
                crate::MAX_VERTICES
            ),
            DynConError::Unsupported { backend, operation } => write!(
                f,
                "backend `{backend}` does not support {operation}; operations earlier in the batch have been applied"
            ),
            DynConError::Backpressure { capacity } => write!(
                f,
                "service queue full ({capacity} pending requests): request rejected, retry after the current round commits"
            ),
            DynConError::ServiceClosed => {
                write!(f, "service closed: request rejected, not enqueued")
            }
            DynConError::Storage { path, message } => {
                write!(f, "storage failure at {path}: {message}")
            }
            DynConError::UnknownVersion {
                requested,
                oldest,
                newest,
            } => {
                if oldest > newest {
                    write!(
                        f,
                        "version {requested} unavailable: no versions retained (view publication disabled, or nothing committed yet)"
                    )
                } else if requested > newest {
                    write!(
                        f,
                        "version {requested} not committed yet: newest committed version is {newest}"
                    )
                } else {
                    write!(
                        f,
                        "version {requested} evicted from the retention window: retained versions are {oldest}..={newest}"
                    )
                }
            }
            DynConError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "corrupt durable state in {path} at byte offset {offset}: {detail}"
            ),
        }
    }
}

impl Error for DynConError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let e = DynConError::VertexOutOfRange {
            vertex: 42,
            num_vertices: 10,
        };
        let s = e.to_string();
        assert!(s.contains("42") && s.contains("10"), "{s}");
        assert!(DynConError::InvalidVertexCount { requested: 0 }
            .to_string()
            .contains("0"));
        let u = DynConError::Unsupported {
            backend: "incremental-unionfind",
            operation: "batch_delete",
        };
        assert!(u.to_string().contains("incremental-unionfind"));
    }

    #[test]
    fn service_errors_display() {
        let b = DynConError::Backpressure { capacity: 64 };
        assert!(
            b.to_string().contains("64") && b.to_string().contains("full"),
            "{b}"
        );
        let c = DynConError::ServiceClosed;
        assert!(c.to_string().contains("closed"), "{c}");
        // Both participate in the std error machinery like every variant.
        let e: Box<dyn Error> = Box::new(c);
        assert!(e.source().is_none());
    }

    #[test]
    fn storage_errors_display() {
        let s = DynConError::Storage {
            path: "/data/wal.log".into(),
            message: "No space left on device".into(),
        };
        assert!(
            s.to_string().contains("/data/wal.log") && s.to_string().contains("No space"),
            "{s}"
        );
        let c = DynConError::Corrupt {
            path: "/data/wal.log".into(),
            offset: 4096,
            detail: "checksum mismatch".into(),
        };
        let text = c.to_string();
        assert!(
            text.contains("4096") && text.contains("checksum mismatch"),
            "{text}"
        );
        // Both stay Clone + Eq like every other variant.
        assert_eq!(s.clone(), s);
        assert_ne!(s, c);
        let e: Box<dyn Error> = Box::new(c);
        assert!(e.source().is_none());
    }

    #[test]
    fn unknown_version_display_distinguishes_the_three_cases() {
        // Evicted: requested below the retained window.
        let evicted = DynConError::UnknownVersion {
            requested: 3,
            oldest: 10,
            newest: 20,
        };
        let text = evicted.to_string();
        assert!(
            text.contains("evicted") && text.contains("10..=20"),
            "{text}"
        );
        // Not yet committed: requested above the newest version.
        let future = DynConError::UnknownVersion {
            requested: 99,
            oldest: 10,
            newest: 20,
        };
        let text = future.to_string();
        assert!(
            text.contains("not committed yet") && text.contains("20"),
            "{text}"
        );
        // Empty window: oldest > newest.
        let empty = DynConError::UnknownVersion {
            requested: 0,
            oldest: 1,
            newest: 0,
        };
        let text = empty.to_string();
        assert!(text.contains("no versions retained"), "{text}");
        assert_eq!(empty.clone(), empty);
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn Error> = Box::new(DynConError::InvalidVertexCount { requested: 0 });
        assert!(e.source().is_none());
    }
}
