//! Mixed-operation batches: the unit of work of [`crate::BatchDynamic::apply`].

/// One operation of a mixed batch. Edges are undirected; `(u, v)` and
/// `(v, u)` denote the same edge, self-loops are ignored by mutations and
/// answered `true` by queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Insert the edge `{0, 1}` (no-op if present or a self-loop).
    Insert(u32, u32),
    /// Delete the edge `{0, 1}` (no-op if absent).
    Delete(u32, u32),
    /// Ask whether `0` and `1` are connected; the answer lands in
    /// [`BatchResult::answers`] in operation order.
    Query(u32, u32),
}

/// The three operation kinds (used to split a mixed batch into maximal
/// same-kind runs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Edge insertion.
    Insert,
    /// Edge deletion.
    Delete,
    /// Connectivity query.
    Query,
}

impl Op {
    /// Size of one operation in the compact binary encoding: a 1-byte
    /// kind tag followed by the two endpoints as little-endian `u32`s.
    /// This is the on-disk unit of the durable write-ahead log.
    pub const ENCODED_LEN: usize = 9;

    /// Append this operation's compact binary encoding to `buf`.
    #[inline]
    pub fn encode_into(self, buf: &mut Vec<u8>) {
        let (tag, (u, v)) = match self {
            Op::Insert(u, v) => (0u8, (u, v)),
            Op::Delete(u, v) => (1u8, (u, v)),
            Op::Query(u, v) => (2u8, (u, v)),
        };
        buf.push(tag);
        buf.extend_from_slice(&u.to_le_bytes());
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Decode one operation from its 9-byte compact encoding. `None` on
    /// an unknown kind tag.
    #[inline]
    pub fn decode(bytes: &[u8; Self::ENCODED_LEN]) -> Option<Op> {
        let u = u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes"));
        let v = u32::from_le_bytes(bytes[5..9].try_into().expect("4 bytes"));
        match bytes[0] {
            0 => Some(Op::Insert(u, v)),
            1 => Some(Op::Delete(u, v)),
            2 => Some(Op::Query(u, v)),
            _ => None,
        }
    }

    /// This operation's kind.
    #[inline]
    pub fn kind(self) -> OpKind {
        match self {
            Op::Insert(..) => OpKind::Insert,
            Op::Delete(..) => OpKind::Delete,
            Op::Query(..) => OpKind::Query,
        }
    }

    /// The two vertex operands.
    #[inline]
    pub fn endpoints(self) -> (u32, u32) {
        match self {
            Op::Insert(u, v) | Op::Delete(u, v) | Op::Query(u, v) => (u, v),
        }
    }
}

/// Encode a batch of operations into the compact binary form
/// ([`Op::ENCODED_LEN`] bytes each, concatenated). The encoding is
/// canonical: equal batches produce equal bytes, so checksums over the
/// encoding are stable across processes.
pub fn encode_ops(ops: &[Op]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(ops.len() * Op::ENCODED_LEN);
    for op in ops {
        op.encode_into(&mut buf);
    }
    buf
}

/// Decode a batch previously produced by [`encode_ops`]. `None` if the
/// byte length is not a multiple of [`Op::ENCODED_LEN`] or any kind tag
/// is unknown — callers treat either as corruption.
pub fn decode_ops(bytes: &[u8]) -> Option<Vec<Op>> {
    if bytes.len() % Op::ENCODED_LEN != 0 {
        return None;
    }
    bytes
        .chunks_exact(Op::ENCODED_LEN)
        .map(|c| Op::decode(c.try_into().expect("exact chunk")))
        .collect()
}

/// Outcome of one [`crate::BatchDynamic::apply`] call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchResult {
    /// Edges actually added by the batch's insert operations.
    pub inserted: usize,
    /// Edges actually removed by the batch's delete operations.
    pub deleted: usize,
    /// Answers of the batch's query operations, in operation order.
    pub answers: Vec<bool>,
}

impl BatchResult {
    /// Total operations that changed the graph.
    pub fn mutations(&self) -> usize {
        self.inserted + self.deleted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_endpoints() {
        assert_eq!(Op::Insert(1, 2).kind(), OpKind::Insert);
        assert_eq!(Op::Delete(1, 2).kind(), OpKind::Delete);
        assert_eq!(Op::Query(1, 2).kind(), OpKind::Query);
        assert_eq!(Op::Query(3, 9).endpoints(), (3, 9));
    }

    #[test]
    fn codec_round_trips() {
        let ops = vec![
            Op::Insert(0, u32::MAX),
            Op::Delete(7, 7),
            Op::Query(123_456, 1),
        ];
        let bytes = encode_ops(&ops);
        assert_eq!(bytes.len(), ops.len() * Op::ENCODED_LEN);
        assert_eq!(decode_ops(&bytes), Some(ops.clone()));
        // Canonical: same batch, same bytes.
        assert_eq!(bytes, encode_ops(&ops));
        // Empty batch is the empty encoding.
        assert_eq!(encode_ops(&[]), Vec::<u8>::new());
        assert_eq!(decode_ops(&[]), Some(Vec::new()));
    }

    #[test]
    fn codec_rejects_garbage() {
        let mut bytes = encode_ops(&[Op::Insert(1, 2)]);
        // Truncated: not a multiple of the op size.
        assert_eq!(decode_ops(&bytes[..5]), None);
        // Unknown kind tag.
        bytes[0] = 9;
        assert_eq!(decode_ops(&bytes), None);
        let nine: [u8; Op::ENCODED_LEN] = bytes[..9].try_into().unwrap();
        assert_eq!(Op::decode(&nine), None);
    }

    #[test]
    fn result_mutations() {
        let r = BatchResult {
            inserted: 3,
            deleted: 2,
            answers: vec![true],
        };
        assert_eq!(r.mutations(), 5);
    }
}
