//! Mixed-operation batches: the unit of work of [`crate::BatchDynamic::apply`].

/// One operation of a mixed batch. Edges are undirected; `(u, v)` and
/// `(v, u)` denote the same edge, self-loops are ignored by mutations and
/// answered `true` by queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Insert the edge `{0, 1}` (no-op if present or a self-loop).
    Insert(u32, u32),
    /// Delete the edge `{0, 1}` (no-op if absent).
    Delete(u32, u32),
    /// Ask whether `0` and `1` are connected; the answer lands in
    /// [`BatchResult::answers`] in operation order.
    Query(u32, u32),
}

/// The three operation kinds (used to split a mixed batch into maximal
/// same-kind runs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Edge insertion.
    Insert,
    /// Edge deletion.
    Delete,
    /// Connectivity query.
    Query,
}

impl Op {
    /// This operation's kind.
    #[inline]
    pub fn kind(self) -> OpKind {
        match self {
            Op::Insert(..) => OpKind::Insert,
            Op::Delete(..) => OpKind::Delete,
            Op::Query(..) => OpKind::Query,
        }
    }

    /// The two vertex operands.
    #[inline]
    pub fn endpoints(self) -> (u32, u32) {
        match self {
            Op::Insert(u, v) | Op::Delete(u, v) | Op::Query(u, v) => (u, v),
        }
    }
}

/// Outcome of one [`crate::BatchDynamic::apply`] call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchResult {
    /// Edges actually added by the batch's insert operations.
    pub inserted: usize,
    /// Edges actually removed by the batch's delete operations.
    pub deleted: usize,
    /// Answers of the batch's query operations, in operation order.
    pub answers: Vec<bool>,
}

impl BatchResult {
    /// Total operations that changed the graph.
    pub fn mutations(&self) -> usize {
        self.inserted + self.deleted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_endpoints() {
        assert_eq!(Op::Insert(1, 2).kind(), OpKind::Insert);
        assert_eq!(Op::Delete(1, 2).kind(), OpKind::Delete);
        assert_eq!(Op::Query(1, 2).kind(), OpKind::Query);
        assert_eq!(Op::Query(3, 9).endpoints(), (3, 9));
    }

    #[test]
    fn result_mutations() {
        let r = BatchResult {
            inserted: 3,
            deleted: 2,
            answers: vec![true],
        };
        assert_eq!(r.mutations(), 5);
    }
}
