//! Versioned snapshot reads: [`ReadView`] and the [`VersionedRead`]
//! surface a serving layer implements.
//!
//! Every sealed commit round has a [`Version`] — in a durable stack the
//! WAL round id, so recovery and replicas agree on numbering — and a
//! [`ReadView`] is an immutable, self-contained snapshot of the graph's
//! connectivity **as of** one version. Views are built from the canonical
//! [`ExportEdges`](crate::ExportEdges) surface, so a view at version `v`
//! is byte-identical no matter which backend, thread count or shard
//! layout produced it: same edge set in, same labels out.
//!
//! A view answers every read-side question without touching the live
//! structure: [`Connectivity::connected`], `component_size`,
//! `num_components`, [`crate::component_groups`] and
//! [`ExportEdges::export_edges`](crate::ExportEdges::export_edges) all
//! work on it, which is what lets a serving layer hand views to reader
//! threads that never block the writer.

use crate::error::DynConError;
use crate::{Connectivity, ExportEdges};
use std::collections::HashMap;
use std::sync::Arc;

/// The id of one sealed commit round. Versions are dense and
/// monotonically increasing; in a durable stack they equal the WAL round
/// ids that recovery preserves, so two processes (or a primary and a
/// replica) that committed the same history agree on every version.
pub type Version = u64;

/// The [`DynConError::UnknownVersion`] encoding of an *empty* retention
/// window (`oldest > newest`): view publication is disabled, or nothing
/// has committed yet. See [`empty_window_error`].
pub const EMPTY_WINDOW: (Version, Version) = (1, 0);

/// Build the typed error for a version request against an empty
/// retention window, using the [`EMPTY_WINDOW`] `oldest > newest`
/// encoding that [`DynConError::UnknownVersion`]'s `Display` reports as
/// "no versions retained".
pub fn empty_window_error(requested: Version) -> DynConError {
    DynConError::UnknownVersion {
        requested,
        oldest: EMPTY_WINDOW.0,
        newest: EMPTY_WINDOW.1,
    }
}

/// The shared, immutable payload of a [`ReadView`]. Built once at
/// publication; every clone of the view is an `Arc` away.
#[derive(Debug, PartialEq, Eq)]
struct ViewInner {
    version: Version,
    /// Canonical component label per vertex: the **smallest vertex id**
    /// of its component. A pure function of the edge set.
    labels: Vec<u32>,
    /// Component size per canonical label (every vertex appears under
    /// its label, so isolated vertices count).
    sizes: HashMap<u32, u64>,
    /// The edge set as of `version`, normalized `(min, max)` and sorted —
    /// the same canonical bytes [`crate::ExportEdges`] promises.
    edges: Vec<(u32, u32)>,
}

/// An immutable connectivity snapshot **as of** one [`Version`].
///
/// Cheap to clone (the payload is shared), [`Send`] + [`Sync`], and
/// self-contained: queries run against the snapshot's own label table,
/// never against the live structure, so any number of readers can hold
/// views while the writer keeps committing rounds.
///
/// `ReadView` implements [`Connectivity`] and [`crate::ExportEdges`], so
/// everything written against the read-side traits — including
/// [`crate::component_groups`] — works on a view unchanged.
///
/// Determinism: a view is built from the canonical sorted edge list, and
/// labels are derived by a sequential min-label union-find — so two views
/// of the same version hold byte-identical labels and edges regardless of
/// thread count, shard count, or the backend that served them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadView {
    inner: Arc<ViewInner>,
}

impl ReadView {
    /// Build a view of `edges` (normalized `u < v`, sorted — the
    /// [`crate::ExportEdges`] contract) over `num_vertices` vertices,
    /// tagged with `version`.
    ///
    /// Cost: one union-find pass over the edges plus one labeling pass
    /// over the vertices — `O(n + m α(n))`.
    pub fn build(num_vertices: usize, version: Version, edges: Vec<(u32, u32)>) -> Self {
        debug_assert!(
            edges
                .windows(2)
                .all(|w| w[0] <= w[1] && w[0].0 < w[0].1 && w[1].0 < w[1].1),
            "ReadView::build expects the canonical normalized sorted edge list"
        );
        // Min-label union-find: the larger root always points at the
        // smaller, so find(v) IS the canonical (minimum) vertex of v's
        // component. Path halving keeps it near-linear.
        let mut parent: Vec<u32> = (0..num_vertices as u32).collect();
        fn find(parent: &mut [u32], mut v: u32) -> u32 {
            while parent[v as usize] != v {
                let grand = parent[parent[v as usize] as usize];
                parent[v as usize] = grand;
                v = grand;
            }
            v
        }
        for &(u, v) in &edges {
            debug_assert!((u as usize) < num_vertices && (v as usize) < num_vertices);
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                let (lo, hi) = (ru.min(rv), ru.max(rv));
                parent[hi as usize] = lo;
            }
        }
        let mut labels = vec![0u32; num_vertices];
        let mut sizes: HashMap<u32, u64> = HashMap::new();
        for v in 0..num_vertices as u32 {
            let root = find(&mut parent, v);
            labels[v as usize] = root;
            *sizes.entry(root).or_insert(0) += 1;
        }
        Self {
            inner: Arc::new(ViewInner {
                version,
                labels,
                sizes,
                edges,
            }),
        }
    }

    /// The version this view snapshots: the id of the last commit round
    /// folded into it.
    pub fn version(&self) -> Version {
        self.inner.version
    }

    /// The canonical component label of every vertex (the smallest
    /// vertex id of its component), indexed by vertex.
    pub fn component_labels(&self) -> &[u32] {
        &self.inner.labels
    }

    /// The snapshot's edge set — normalized and sorted, without the
    /// clone [`crate::ExportEdges::export_edges`] makes.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.inner.edges
    }

    /// [`crate::component_groups`] over this view: label `vertices` by
    /// the first-in-input-order representative of each component.
    pub fn component_groups(&self, vertices: &[u32]) -> Vec<u32> {
        crate::component_groups(self, vertices)
    }
}

impl Connectivity for ReadView {
    fn backend_name(&self) -> &'static str {
        "read-view"
    }

    fn num_vertices(&self) -> usize {
        self.inner.labels.len()
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        self.inner.labels[u as usize] == self.inner.labels[v as usize]
    }

    fn num_components(&self) -> usize {
        self.inner.sizes.len()
    }

    fn component_size(&self, v: u32) -> u64 {
        self.inner.sizes[&self.inner.labels[v as usize]]
    }
}

impl ExportEdges for ReadView {
    fn export_edges(&self) -> Vec<(u32, u32)> {
        self.inner.edges.clone()
    }
}

/// The versioned read surface of a serving layer: hand out [`ReadView`]s
/// at committed versions without blocking the writer.
///
/// Implementors keep a **bounded retention window** of recently committed
/// versions `[oldest, newest]`; requests outside it fail with
/// [`DynConError::UnknownVersion`] carrying the window bounds, so a
/// caller can either retry at `newest` or conclude the version is gone
/// for good.
pub trait VersionedRead {
    /// The retained `[oldest, newest]` version range, or `None` when the
    /// window is empty (publication disabled, or nothing committed yet).
    fn version_window(&self) -> Option<(Version, Version)>;

    /// A view of the **newest** committed version.
    fn read_view(&self) -> Result<ReadView, DynConError>;

    /// A view of exactly `version`.
    fn read_view_at(&self, version: Version) -> Result<ReadView, DynConError>;

    /// The newest committed version, if any.
    fn newest_version(&self) -> Option<Version> {
        self.version_window().map(|(_, newest)| newest)
    }

    /// The oldest still-retained version, if any.
    fn oldest_version(&self) -> Option<Version> {
        self.version_window().map(|(oldest, _)| oldest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(n: usize, version: Version, mut edges: Vec<(u32, u32)>) -> ReadView {
        for e in &mut edges {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        edges.sort_unstable();
        edges.dedup();
        ReadView::build(n, version, edges)
    }

    #[test]
    fn labels_are_canonical_min_vertex() {
        let v = view(8, 3, vec![(1, 0), (1, 2), (5, 4)]);
        // Components: {0,1,2} → 0, {3} → 3, {4,5} → 4, {6}, {7}.
        assert_eq!(v.component_labels(), &[0, 0, 0, 3, 4, 4, 6, 7]);
        assert_eq!(v.version(), 3);
        assert_eq!(v.num_vertices(), 8);
        assert_eq!(v.num_components(), 5);
        assert!(v.connected(0, 2) && !v.connected(2, 4));
        assert_eq!(v.component_size(1), 3);
        assert_eq!(v.component_size(7), 1);
    }

    #[test]
    fn views_of_the_same_edge_set_are_byte_identical() {
        // Insertion history must not matter: only the edge set does.
        let a = view(6, 9, vec![(0, 1), (1, 2), (3, 4)]);
        let b = view(6, 9, vec![(3, 4), (2, 1), (1, 0)]);
        assert_eq!(a, b);
        assert_eq!(a.component_labels(), b.component_labels());
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn view_answers_the_read_side_traits() {
        let v = view(5, 0, vec![(0, 1), (2, 3)]);
        assert_eq!(v.backend_name(), "read-view");
        assert_eq!(
            v.batch_connected(&[(0, 1), (1, 2), (4, 4)]),
            vec![true, false, true]
        );
        assert_eq!(v.export_edges(), vec![(0, 1), (2, 3)]);
        // component_groups works on views (first-in-input-order reps).
        assert_eq!(v.component_groups(&[3, 2, 0, 1, 4]), vec![3, 3, 0, 0, 4]);
    }

    #[test]
    fn empty_window_encoding_is_distinguishable() {
        let (oldest, newest) = EMPTY_WINDOW;
        assert!(oldest > newest, "empty window encodes as an empty range");
        match empty_window_error(7) {
            DynConError::UnknownVersion {
                requested,
                oldest,
                newest,
            } => {
                assert_eq!(requested, 7);
                assert!(oldest > newest);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn clone_shares_the_payload() {
        let v = view(4, 1, vec![(0, 1)]);
        let w = v.clone();
        assert_eq!(v, w);
        assert!(std::ptr::eq(v.component_labels(), w.component_labels()));
    }
}
