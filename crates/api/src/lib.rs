//! # dyncon-api
//!
//! The workspace-wide dynamic-connectivity contract. The paper's interface
//! is three batch operations — `BatchConnected`, `BatchInsert`,
//! `BatchDelete` (Acar, Anderson, Blelloch, Dhulipala, SPAA 2019) — and
//! this crate pins that interface down once, for every backend in the
//! workspace:
//!
//! * [`Connectivity`] — the read side: `connected`, `batch_connected`
//!   (both `&self`), `num_components`, `component_size`;
//! * [`BatchDynamic`] — the write side plus [`BatchDynamic::apply`], which
//!   takes a **mixed-operation batch** ([`Op::Insert`] / [`Op::Delete`] /
//!   [`Op::Query`] interleaved in one slice) so streaming workloads no
//!   longer need caller-managed phase splitting;
//! * [`Builder`] — one construction path for every backend (vertex count,
//!   [`DeletionAlgorithm`], stats on/off, ablation knobs) via
//!   [`BuildFrom`];
//! * [`DynConError`] — typed errors at the API boundary instead of deep
//!   panics: out-of-range vertices are rejected with
//!   [`DynConError::VertexOutOfRange`] before any state is touched;
//!   durable-storage failures surface as [`DynConError::Storage`] /
//!   [`DynConError::Corrupt`];
//! * [`encode_ops`] / [`decode_ops`] — the compact canonical binary
//!   encoding of mixed-op batches ([`Op::ENCODED_LEN`] bytes per op) that
//!   the `dyncon-durable` write-ahead log frames and checksums;
//! * [`ExportEdges`] — the canonical bulk-export surface (normalized,
//!   sorted edge list) durable snapshots are built on;
//! * [`VersionedRead`] / [`ReadView`] — the MVCC read surface: every
//!   sealed commit round gets a [`Version`] (the WAL round id in a
//!   durable stack) and a serving layer hands out immutable snapshot
//!   views **as of** a version, from a bounded retention window, with
//!   [`DynConError::UnknownVersion`] outside it.
//!
//! Backends implementing the contract: `dyncon-core`'s
//! `BatchDynamicConnectivity` (the paper's structure), `dyncon-hdt`'s
//! `HdtConnectivity` (sequential baseline), `dyncon-spanning`'s
//! `IncrementalConnectivity` (insert-only union-find),
//! `StaticRecompute` (recompute-from-scratch baseline) and
//! `NaiveDynamicGraph` (the trusted test oracle). Cross-backend
//! differential tests drive them all through identical mixed-op batches as
//! `Box<dyn BatchDynamic>` trait objects.
//!
//! ## Validation contract
//!
//! * [`BatchDynamic::apply`] validates **every** operation in the batch
//!   (including queries) against `num_vertices()` *before* mutating
//!   anything: on [`DynConError::VertexOutOfRange`] the structure is
//!   untouched.
//! * [`BatchDynamic::batch_insert`] / [`BatchDynamic::batch_delete`]
//!   validate their own edge lists the same way.
//! * The `&self` query methods of [`Connectivity`] are the unchecked fast
//!   path: passing an out-of-range vertex may panic. Route untrusted
//!   input through [`BatchDynamic::apply`] with [`Op::Query`].
//! * A run of operations that a backend cannot support at all (deletions
//!   on an insert-only structure) fails with
//!   [`DynConError::Unsupported`]; runs *before* the offending one have
//!   already been applied by then, and the error message says so.

mod builder;
mod error;
mod op;
mod view;

pub use builder::{BuildFrom, Builder, DeletionAlgorithm, MAX_VERTICES};
pub use error::DynConError;
pub use op::{decode_ops, encode_ops, BatchResult, Op, OpKind};
pub use view::{empty_window_error, ReadView, Version, VersionedRead, EMPTY_WINDOW};

/// The read side of a connectivity structure: queries only, all `&self`,
/// so concurrent readers never need exclusive access.
///
/// Vertices are dense ids `0..num_vertices()`. The query methods are the
/// unchecked fast path — out-of-range vertices may panic; see the crate
/// docs for the validated alternative.
pub trait Connectivity {
    /// Short human-readable backend name (for experiment tables and
    /// differential-test diagnostics).
    fn backend_name(&self) -> &'static str;

    /// Number of vertices of the (fixed) vertex universe.
    fn num_vertices(&self) -> usize;

    /// True iff `u` and `v` are in the same connected component.
    fn connected(&self, u: u32, v: u32) -> bool;

    /// Algorithm 1: answer a batch of connectivity queries. The default
    /// loops [`Connectivity::connected`]; backends with a genuinely
    /// batch-parallel query path override it.
    fn batch_connected(&self, pairs: &[(u32, u32)]) -> Vec<bool> {
        pairs.iter().map(|&(u, v)| self.connected(u, v)).collect()
    }

    /// Number of connected components (isolated vertices count).
    fn num_components(&self) -> usize;

    /// Number of vertices in `v`'s component (≥ 1).
    fn component_size(&self, v: u32) -> u64;
}

/// The write side: batch mutations plus the mixed-operation entry point.
///
/// All mutation methods validate vertex ids and return typed
/// [`DynConError`]s — this trait is the safe API boundary of every
/// backend.
pub trait BatchDynamic: Connectivity {
    /// Insert a batch of edges. Self-loops, duplicates within the batch
    /// and edges already present are ignored. Returns the number of edges
    /// actually added to the graph (backends that do not track the edge
    /// set, such as an insert-only union-find, count accepted operations
    /// instead and say so in their docs).
    fn batch_insert(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError>;

    /// Delete a batch of edges. Self-loops, duplicates and absent edges
    /// are ignored. Returns the number of edges actually removed.
    fn batch_delete(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError>;

    /// Apply a **mixed-operation batch**: inserts, deletes and queries
    /// interleaved in one slice, applied in order. Maximal runs of
    /// same-kind operations execute as one batch call each, so a
    /// sliding-window round (`expire ∪ ingest ∪ analytics`) is a single
    /// `apply`.
    ///
    /// Every operation is validated up front: on
    /// [`DynConError::VertexOutOfRange`] nothing has been applied.
    /// Query answers land in [`BatchResult::answers`] in operation order.
    fn apply(&mut self, ops: &[Op]) -> Result<BatchResult, DynConError> {
        let n = self.num_vertices();
        for op in ops {
            let (u, v) = op.endpoints();
            validate_vertex(n, u)?;
            validate_vertex(n, v)?;
        }
        let mut result = BatchResult::default();
        let mut run: Vec<(u32, u32)> = Vec::new();
        let mut i = 0;
        while i < ops.len() {
            let kind = ops[i].kind();
            run.clear();
            while i < ops.len() && ops[i].kind() == kind {
                run.push(ops[i].endpoints());
                i += 1;
            }
            match kind {
                OpKind::Insert => result.inserted += self.batch_insert(&run)?,
                OpKind::Delete => result.deleted += self.batch_delete(&run)?,
                OpKind::Query => result.answers.extend(self.batch_connected(&run)),
            }
        }
        Ok(result)
    }

    /// Whether this backend can perform operations of `kind` at all —
    /// a *static* capability probe (it must not depend on current state).
    /// The default claims full support; insert-only backends override it
    /// so serving layers can reject unsupportable requests at admission
    /// instead of failing a whole commit round mid-`apply`.
    fn supports(&self, kind: OpKind) -> bool {
        let _ = kind;
        true
    }

    /// Run the backend's internal consistency checker, if it has one.
    /// Debugging/testing hook; the default is a no-op.
    fn check(&self) -> Result<(), String> {
        Ok(())
    }
}

/// The canonical bulk-export surface a durable snapshot is built on.
///
/// A connectivity structure is fully determined by its vertex universe
/// and edge set, so `(num_vertices, export_edges())` is a complete,
/// backend-independent snapshot: rebuilding any backend from it (via
/// [`BuildFrom`] + [`BatchDynamic::batch_insert`]) yields an equivalent
/// graph. The contract makes the bytes canonical too: edges come back
/// **normalized** (`u < v`) and **sorted**, so two structures holding the
/// same edge set export identical vectors regardless of insertion
/// history — which is what lets snapshot files be compared and
/// checksummed byte-for-byte.
pub trait ExportEdges: Connectivity {
    /// Every current edge, normalized `(min, max)` and sorted ascending.
    fn export_edges(&self) -> Vec<(u32, u32)>;
}

/// Group a vertex list into the connected components of `g`, using only
/// the read-side batch query surface — the label-export helper a shard
/// coordinator contracts boundary vertices with.
///
/// Returns, for each input position, the **representative vertex** of
/// that vertex's component: the first vertex *in input order* that
/// belongs to it. The output is therefore a pure function of the graph's
/// partition and the input order — callers that pass a canonically
/// sorted list get canonical labels, which is what the workspace
/// determinism contract needs. Duplicate input vertices simply share a
/// representative.
///
/// Costs one [`Connectivity::batch_connected`] call per **distinct
/// component** represented in `vertices` (each call batches every
/// still-unlabelled vertex), not one per vertex.
pub fn component_groups<C: Connectivity + ?Sized>(g: &C, vertices: &[u32]) -> Vec<u32> {
    let mut rep = vec![0u32; vertices.len()];
    let mut pending: Vec<usize> = (0..vertices.len()).collect();
    while let Some((&lead, rest)) = pending.split_first() {
        let r = vertices[lead];
        rep[lead] = r;
        let pairs: Vec<(u32, u32)> = rest.iter().map(|&i| (r, vertices[i])).collect();
        let answers = g.batch_connected(&pairs);
        let mut next = Vec::with_capacity(rest.len());
        for (&i, same) in rest.iter().zip(answers) {
            if same {
                rep[i] = r;
            } else {
                next.push(i);
            }
        }
        pending = next;
    }
    rep
}

/// Reject an out-of-range vertex id with a typed error.
#[inline]
pub fn validate_vertex(num_vertices: usize, v: u32) -> Result<(), DynConError> {
    if (v as usize) < num_vertices {
        Ok(())
    } else {
        Err(DynConError::VertexOutOfRange {
            vertex: v,
            num_vertices,
        })
    }
}

/// Validate every endpoint of an edge/query list (helper for backend
/// `batch_insert`/`batch_delete` implementations).
pub fn validate_pairs(num_vertices: usize, pairs: &[(u32, u32)]) -> Result<(), DynConError> {
    for &(u, v) in pairs {
        validate_vertex(num_vertices, u)?;
        validate_vertex(num_vertices, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal in-crate backend so trait defaults are testable without a
    /// dependency cycle: adjacency-matrix graph with DFS connectivity.
    struct Dense {
        n: usize,
        adj: Vec<bool>,
    }

    impl Dense {
        fn new(n: usize) -> Self {
            Self {
                n,
                adj: vec![false; n * n],
            }
        }
        fn idx(&self, u: u32, v: u32) -> usize {
            u as usize * self.n + v as usize
        }
        fn reach(&self, u: u32) -> Vec<bool> {
            let mut seen = vec![false; self.n];
            let mut stack = vec![u];
            seen[u as usize] = true;
            while let Some(x) = stack.pop() {
                for y in 0..self.n as u32 {
                    if self.adj[self.idx(x, y)] && !seen[y as usize] {
                        seen[y as usize] = true;
                        stack.push(y);
                    }
                }
            }
            seen
        }
    }

    impl Connectivity for Dense {
        fn backend_name(&self) -> &'static str {
            "dense-test"
        }
        fn num_vertices(&self) -> usize {
            self.n
        }
        fn connected(&self, u: u32, v: u32) -> bool {
            self.reach(u)[v as usize]
        }
        fn num_components(&self) -> usize {
            let mut comps = 0;
            let mut seen = vec![false; self.n];
            for v in 0..self.n as u32 {
                if !seen[v as usize] {
                    comps += 1;
                    for (i, r) in self.reach(v).iter().enumerate() {
                        seen[i] |= r;
                    }
                }
            }
            comps
        }
        fn component_size(&self, v: u32) -> u64 {
            self.reach(v).iter().filter(|&&r| r).count() as u64
        }
    }

    impl BatchDynamic for Dense {
        fn batch_insert(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError> {
            validate_pairs(self.n, edges)?;
            let mut added = 0;
            for &(u, v) in edges {
                if u != v && !self.adj[self.idx(u, v)] {
                    let (a, b) = (self.idx(u, v), self.idx(v, u));
                    self.adj[a] = true;
                    self.adj[b] = true;
                    added += 1;
                }
            }
            Ok(added)
        }
        fn batch_delete(&mut self, edges: &[(u32, u32)]) -> Result<usize, DynConError> {
            validate_pairs(self.n, edges)?;
            let mut removed = 0;
            for &(u, v) in edges {
                if u != v && self.adj[self.idx(u, v)] {
                    let (a, b) = (self.idx(u, v), self.idx(v, u));
                    self.adj[a] = false;
                    self.adj[b] = false;
                    removed += 1;
                }
            }
            Ok(removed)
        }
    }

    #[test]
    fn apply_splits_runs_and_orders_answers() {
        let mut g = Dense::new(6);
        let res = g
            .apply(&[
                Op::Query(0, 1),
                Op::Insert(0, 1),
                Op::Insert(1, 2),
                Op::Query(0, 2),
                Op::Delete(0, 1),
                Op::Query(0, 2),
                Op::Query(1, 2),
            ])
            .unwrap();
        assert_eq!(res.inserted, 2);
        assert_eq!(res.deleted, 1);
        assert_eq!(res.answers, vec![false, true, false, true]);
    }

    #[test]
    fn apply_validates_before_mutating() {
        let mut g = Dense::new(4);
        let err = g.apply(&[Op::Insert(0, 1), Op::Query(9, 0)]).unwrap_err();
        assert_eq!(
            err,
            DynConError::VertexOutOfRange {
                vertex: 9,
                num_vertices: 4
            }
        );
        // The valid insert before the bad query must NOT have run.
        assert_eq!(g.num_components(), 4);
    }

    #[test]
    fn trait_object_dispatch() {
        let mut g: Box<dyn BatchDynamic> = Box::new(Dense::new(5));
        g.apply(&[Op::Insert(0, 1), Op::Insert(3, 4)]).unwrap();
        assert_eq!(g.num_components(), 3);
        assert_eq!(g.component_size(4), 2);
        assert_eq!(g.batch_connected(&[(0, 1), (0, 3)]), vec![true, false]);
        assert!(g.check().is_ok());
        // The default capability probe claims everything.
        for kind in [OpKind::Insert, OpKind::Delete, OpKind::Query] {
            assert!(g.supports(kind));
        }
    }

    #[test]
    fn empty_batch_is_identity() {
        let mut g = Dense::new(3);
        let res = g.apply(&[]).unwrap();
        assert_eq!(res, BatchResult::default());
    }

    #[test]
    fn component_groups_labels_by_first_in_input_order() {
        let mut g = Dense::new(8);
        g.batch_insert(&[(0, 1), (1, 2), (4, 5)]).unwrap();
        // Components: {0,1,2}, {3}, {4,5}, {6}, {7}.
        assert_eq!(
            component_groups(&g, &[2, 5, 0, 3, 4, 1]),
            vec![2, 5, 2, 3, 5, 2],
            "representative = first vertex of the component in INPUT order"
        );
        // Sorted input gives canonical (min-vertex) representatives, and
        // duplicates share their component's label.
        assert_eq!(
            component_groups(&g, &[0, 1, 2, 2, 4, 5, 7]),
            vec![0, 0, 0, 0, 4, 4, 7]
        );
        assert!(component_groups(&g, &[]).is_empty());
    }

    #[test]
    fn validate_pairs_reports_first_offender() {
        assert!(validate_pairs(8, &[(0, 7), (3, 3)]).is_ok());
        let err = validate_pairs(8, &[(0, 7), (8, 1)]).unwrap_err();
        assert!(err.to_string().contains("vertex 8"));
    }
}
