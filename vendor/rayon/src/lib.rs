//! Vendored, offline subset of [rayon](https://docs.rs/rayon).
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the *exact* rayon API surface the
//! `dyncon` crates use, implemented on `std::thread::scope`. Every data
//! parallel operation retains rayon's semantics:
//!
//! * terminal operations are barriers (they return only after every item
//!   was processed), which is what `dyncon_primitives::par_for` relies on
//!   for its happens-before edges;
//! * `collect` and `map` preserve input order;
//! * `ThreadPool::install` bounds the *total* concurrency of parallel
//!   operations running inside it: a parallel region hands each of its
//!   lanes an equal share of the caller's thread budget, so nested
//!   parallelism divides the bound instead of multiplying it.
//!
//! Work is split into at most [`current_num_threads`] contiguous blocks and
//! executed on scoped threads; small inputs run sequentially on the calling
//! thread. This is a plain fork-join executor, not a work-stealing runtime —
//! a future PR can swap in a persistent pool behind the same API.

mod iter;
mod pool;
mod slice;

pub use pool::{current_num_threads, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::iter::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator, ParallelIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

pub mod iter_api {
    //! Adapter types, exposed for completeness (rarely named directly).
    pub use crate::iter::{Enumerate, FilterMap, Map, ParRange, ParSliceIter, Zip};
    pub use crate::slice::{ParChunks, ParChunksMut};
}
