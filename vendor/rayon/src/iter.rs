//! Indexed parallel iterators over scoped threads.
//!
//! Every source the `dyncon` crates iterate in parallel (ranges, slices,
//! chunks) has a known length and O(1) random access, so the whole stub is
//! built on one abstraction: [`ParallelIterator::item`] produces the
//! element at an index, and the drivers split `0..len` into contiguous
//! blocks, one scoped thread per block. Terminal operations are barriers
//! and `collect` preserves input order, exactly as in rayon.

use crate::pool::current_num_threads;
use std::ops::Range;

/// Below this many items a "parallel" operation runs sequentially on the
/// calling thread; spawning threads for tiny inputs costs more than it
/// saves (the callers additionally gate on their own thresholds).
const MIN_ITEMS_PER_THREAD: usize = 1024;

pub(crate) fn threads_for(n: usize) -> usize {
    (n / MIN_ITEMS_PER_THREAD).clamp(1, current_num_threads())
}

/// Split `0..n` into `threads_for(n)` contiguous blocks and run `f` on
/// each, in parallel. Returns only after every block finished. Each of
/// the `t` lanes (workers plus the calling thread) gets a `bound / t`
/// share of the caller's thread budget, so nested parallel calls keep
/// *total* concurrency inside an enclosing
/// [`crate::ThreadPool::install`] bound instead of multiplying it.
pub(crate) fn run_blocks(n: usize, f: impl Fn(Range<usize>) + Sync) {
    let t = threads_for(n);
    if t <= 1 {
        f(0..n);
        return;
    }
    let share = (current_num_threads() / t).max(1);
    let chunk = n.div_ceil(t);
    std::thread::scope(|s| {
        // Blocks 1..t go to workers; the calling thread runs block 0
        // itself instead of idling at the join.
        for w in 1..t {
            let lo = w * chunk;
            let hi = n.min(lo + chunk);
            if lo >= hi {
                break;
            }
            let f = &f;
            s.spawn(move || {
                crate::pool::inherit_num_threads(share);
                f(lo..hi)
            });
        }
        crate::pool::with_num_threads(share, || f(0..chunk.min(n)));
    });
}

/// Like [`run_blocks`] but each block returns a `Vec`; blocks come back in
/// input order so concatenating them preserves ordering.
pub(crate) fn run_blocks_collect<T: Send>(
    n: usize,
    f: impl Fn(Range<usize>) -> Vec<T> + Sync,
) -> Vec<T> {
    let t = threads_for(n);
    if t <= 1 {
        return f(0..n);
    }
    let share = (current_num_threads() / t).max(1);
    let chunk = n.div_ceil(t);
    std::thread::scope(|s| {
        // Blocks 1..t go to workers; the calling thread computes block 0
        // while they run, then splices results back in input order.
        let mut handles = Vec::with_capacity(t - 1);
        for w in 1..t {
            let lo = w * chunk;
            let hi = n.min(lo + chunk);
            if lo >= hi {
                break;
            }
            let f = &f;
            handles.push(s.spawn(move || {
                crate::pool::inherit_num_threads(share);
                f(lo..hi)
            }));
        }
        let mut out = crate::pool::with_num_threads(share, || f(0..chunk.min(n)));
        out.reserve(n.saturating_sub(out.len()));
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
        out
    })
}

/// An indexed parallel iterator: known length, O(1) access by index.
///
/// # Safety contract for implementors and drivers
///
/// [`ParallelIterator::item`] may be called **at most once per index** in
/// `0..len`, possibly from different threads. This is what lets
/// [`crate::slice::ParChunksMut`] hand out disjoint `&mut` chunks from a
/// shared `&self`.
pub trait ParallelIterator: Sized + Send + Sync {
    /// The element type.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// True when there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produce the item at `index`.
    ///
    /// # Safety
    /// Each index in `0..self.len()` may be consumed at most once across
    /// all threads (see the trait-level contract).
    unsafe fn item(&self, index: usize) -> Self::Item;

    /// Apply `f` to every item; returns after all items are processed.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        run_blocks(self.len(), |r| {
            for i in r {
                // SAFETY: `run_blocks` hands out disjoint index ranges, so
                // every index is consumed exactly once.
                f(unsafe { self.item(i) });
            }
        });
    }

    /// Lazily map every item through `f`.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Map-and-filter; only supports terminal `collect`/`for_each`.
    fn filter_map<U, F>(self, f: F) -> FilterMap<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> Option<U> + Sync + Send,
    {
        FilterMap { base: self, f }
    }

    /// Pair items positionally with `other` (length = the shorter side).
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        B: ParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Attach each item's index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Collect all items in input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        let items = run_blocks_collect(self.len(), |r| {
            // SAFETY: disjoint index ranges; every index consumed once.
            r.map(|i| unsafe { self.item(i) }).collect()
        });
        C::from_ordered_items(items)
    }
}

/// Alias trait kept so `rayon::prelude::*` call sites that name
/// `IndexedParallelIterator` in bounds keep compiling; every stub iterator
/// is indexed.
pub trait IndexedParallelIterator: ParallelIterator {}
impl<I: ParallelIterator> IndexedParallelIterator for I {}

/// Conversion into a [`ParallelIterator`] (`(0..n).into_par_iter()`).
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Types collectable from an ordered parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the collection from items already in input order.
    fn from_ordered_items(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_items(items: Vec<T>) -> Self {
        items
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct ParRange {
    start: usize,
    len: usize,
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    type Item = usize;
    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

impl ParallelIterator for ParRange {
    type Item = usize;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn item(&self, index: usize) -> usize {
        self.start + index
    }
}

/// Parallel iterator over `&[T]` (see [`crate::slice::ParallelSlice`]).
pub struct ParSliceIter<'a, T: Sync> {
    pub(crate) slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSliceIter<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    unsafe fn item(&self, index: usize) -> &'a T {
        // SAFETY: the driver only passes indices in 0..len.
        unsafe { self.slice.get_unchecked(index) }
    }
}

/// Lazy map adapter.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, U, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync + Send,
{
    type Item = U;
    fn len(&self) -> usize {
        self.base.len()
    }
    unsafe fn item(&self, index: usize) -> U {
        // SAFETY: forwarded under the same at-most-once contract.
        (self.f)(unsafe { self.base.item(index) })
    }
}

/// Lazy zip adapter.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    unsafe fn item(&self, index: usize) -> (A::Item, B::Item) {
        // SAFETY: forwarded under the same at-most-once contract.
        unsafe { (self.a.item(index), self.b.item(index)) }
    }
}

/// Lazy enumerate adapter.
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    unsafe fn item(&self, index: usize) -> (usize, I::Item) {
        // SAFETY: forwarded under the same at-most-once contract.
        (index, unsafe { self.base.item(index) })
    }
}

/// Filter-map adapter. Not itself indexed (output length is data
/// dependent), so it only offers the terminals the callers use.
pub struct FilterMap<I, F> {
    base: I,
    f: F,
}

impl<I, U, F> FilterMap<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> Option<U> + Sync + Send,
{
    /// Collect the retained items, preserving input order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<U>,
    {
        let items = run_blocks_collect(self.base.len(), |r| {
            // SAFETY: disjoint index ranges; every index consumed once.
            r.filter_map(|i| (self.f)(unsafe { self.base.item(i) }))
                .collect()
        });
        C::from_ordered_items(items)
    }

    /// Apply the filter-map for its side effects.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(U) + Sync + Send,
    {
        run_blocks(self.base.len(), |r| {
            for i in r {
                // SAFETY: disjoint index ranges; every index consumed once.
                if let Some(u) = (self.f)(unsafe { self.base.item(i) }) {
                    g(u);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn range_for_each_visits_all() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        (0..n).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..50_000).into_par_iter().map(|i| i * 2).collect();
        assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i));
    }

    #[test]
    fn filter_map_collect_preserves_order() {
        let out: Vec<usize> = (0..10_000)
            .into_par_iter()
            .filter_map(|i| (i % 3 == 0).then_some(i))
            .collect();
        let expect: Vec<usize> = (0..10_000).filter(|i| i % 3 == 0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn lanes_share_the_thread_budget() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        pool.install(|| {
            assert_eq!(crate::current_num_threads(), 2);
            // Inside a 2-lane parallel region each lane gets a budget of
            // 1, so nested parallel calls cannot exceed the pool bound.
            (0..50_000).into_par_iter().for_each(|_| {
                assert_eq!(crate::current_num_threads(), 1);
            });
            // The calling thread's own bound is restored after the join.
            assert_eq!(crate::current_num_threads(), 2);
        });
    }

    #[test]
    fn zip_enumerate_shapes() {
        let total = AtomicUsize::new(0);
        (0..5000)
            .into_par_iter()
            .zip((0..4000).into_par_iter())
            .enumerate()
            .for_each(|(i, (a, b))| {
                assert_eq!(i, a);
                assert_eq!(i, b);
                total.fetch_add(1, Ordering::Relaxed);
            });
        assert_eq!(total.load(Ordering::Relaxed), 4000);
    }
}
