//! Thread-count bookkeeping and the `ThreadPool` facade.
//!
//! The stub has no persistent worker threads; a "pool" is just a bound on
//! how many scoped threads a parallel operation may fan out to. `install`
//! stores that bound in a thread-local so nested parallel calls observe it,
//! which is all the `dyncon` benches need from `ThreadPoolBuilder`.

use std::cell::Cell;
use std::fmt;
use std::sync::OnceLock;

thread_local! {
    /// 0 means "no override": use the machine's available parallelism.
    static CURRENT_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Environment-driven default thread count, read once per process:
///
/// 1. `DYNCON_THREADS` — the dyncon suite's thread-matrix variable. A
///    single integer pins the default pool size (what the CI test matrix
///    exports); a comma-separated list (what the scaling benches consume
///    via `dyncon_bench::thread_counts`) pins it to the list's **first
///    valid** entry so a plain `cargo test` under a matrix entry observes
///    the intended bound.
/// 2. `RAYON_NUM_THREADS` — honoured for parity with real rayon.
///
/// Explicit `ThreadPoolBuilder::num_threads` / `ThreadPool::install`
/// bounds always win over the environment.
fn env_num_threads() -> Option<usize> {
    ["DYNCON_THREADS", "RAYON_NUM_THREADS"]
        .iter()
        .find_map(|var| {
            std::env::var(var)
                .ok()
                .and_then(|raw| parse_thread_env(&raw))
        })
}

/// Parse a thread-count environment value: the first comma-separated
/// entry that is a positive integer (the same "skip invalid entries"
/// rule `dyncon_bench::thread_counts` applies to the full list, so a
/// value like `"0,2"` pins the pool to the same bound the bench matrix
/// reports); `None` when no entry qualifies.
fn parse_thread_env(raw: &str) -> Option<usize> {
    raw.split(',')
        .find_map(|entry| entry.trim().parse::<usize>().ok().filter(|&n| n > 0))
}

fn default_num_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        env_num_threads()
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Number of threads parallel operations on this thread may use.
pub fn current_num_threads() -> usize {
    let o = CURRENT_OVERRIDE.with(Cell::get);
    if o == 0 {
        default_num_threads()
    } else {
        o
    }
}

/// Propagate a thread budget onto the current (freshly spawned, short
/// lived) worker thread so nested parallel calls inside it observe their
/// share of the caller's bound. No restore needed: scoped workers die at
/// the end of the operation that spawned them.
pub(crate) fn inherit_num_threads(n: usize) {
    CURRENT_OVERRIDE.with(|c| c.set(n));
}

/// Run `f` with the current thread's bound temporarily set to `n`,
/// restoring the previous value afterwards (used when the calling thread
/// executes one block of a parallel operation itself).
pub(crate) fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = CURRENT_OVERRIDE.with(Cell::get);
    let _restore = Restore(prev);
    CURRENT_OVERRIDE.with(|c| c.set(n));
    f()
}

/// Builder for [`ThreadPool`], mirroring rayon's fluent API.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound the pool to `num_threads` workers (0 = machine default).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Create the pool. Infallible here, but keeps rayon's `Result` shape
    /// so call sites can `.unwrap()` unchanged.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// Error type for [`ThreadPoolBuilder::build`]; never constructed by the
/// stub but part of the signature.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A bound on parallelism for operations run via [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread bound active, restoring the
    /// previous bound afterwards (also on panic).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let prev = CURRENT_OVERRIDE.with(Cell::get);
        let _restore = Restore(prev);
        CURRENT_OVERRIDE.with(|c| c.set(self.num_threads));
        op()
    }

    /// The bound this pool applies.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_env_parsing() {
        assert_eq!(parse_thread_env("4"), Some(4));
        assert_eq!(parse_thread_env(" 2 "), Some(2));
        assert_eq!(parse_thread_env("1,2,4"), Some(1));
        assert_eq!(parse_thread_env("8, 16"), Some(8));
        assert_eq!(parse_thread_env("0"), None);
        assert_eq!(parse_thread_env(""), None);
        assert_eq!(parse_thread_env("auto"), None);
        // Invalid entries are skipped, matching the bench-matrix parser:
        // "0,2" pins the same bound thread_counts() reports ([2]).
        assert_eq!(parse_thread_env("0,2"), Some(2));
        assert_eq!(parse_thread_env("junk, 4"), Some(4));
    }

    #[test]
    fn install_overrides_and_restores() {
        let outer = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
            let inner = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
            inner.install(|| assert_eq!(current_num_threads(), 1));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), outer);
    }
}
