//! Parallel slice operations: `par_iter`, `par_chunks`, `par_chunks_mut`,
//! and the parallel unstable sorts.
//!
//! Sorting uses a chunked strategy: the slice is split into one block per
//! thread, each block is `sort_unstable`d in parallel, then a final
//! sequential *stable* sort merges the pre-sorted runs (the stable sort is
//! run-adaptive, so this pass is `O(n log t)` comparisons rather than a
//! full re-sort).

use crate::iter::{threads_for, ParSliceIter, ParallelIterator};
use std::marker::PhantomData;

/// Read-only parallel views over `&[T]`.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over references to the elements.
    fn par_iter(&self) -> ParSliceIter<'_, T>;
    /// Parallel iterator over contiguous chunks of `chunk_size` elements
    /// (last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSliceIter<'_, T> {
        ParSliceIter { slice: self }
    }
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }
}

/// Mutable parallel views and sorts over `&mut [T]`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    /// Parallel unstable sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Parallel unstable sort by key.
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            chunk_size,
            _marker: PhantomData,
        }
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_sort_impl(self, |chunk| chunk.sort_unstable(), |all| all.sort());
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        let key = &key;
        par_sort_impl(
            self,
            |chunk| chunk.sort_unstable_by_key(key),
            |all| all.sort_by_key(key),
        );
    }
}

fn par_sort_impl<T: Send>(
    slice: &mut [T],
    sort_chunk: impl Fn(&mut [T]) + Sync,
    merge_runs: impl FnOnce(&mut [T]),
) {
    let n = slice.len();
    let t = threads_for(n);
    if t <= 1 {
        sort_chunk(slice);
        return;
    }
    let share = (crate::current_num_threads() / t).max(1);
    let chunk = n.div_ceil(t);
    std::thread::scope(|s| {
        // First run on the calling thread, the rest on workers.
        let mut pieces = slice.chunks_mut(chunk);
        let first = pieces.next();
        for piece in pieces {
            let sort_chunk = &sort_chunk;
            s.spawn(move || {
                crate::pool::inherit_num_threads(share);
                sort_chunk(piece)
            });
        }
        if let Some(piece) = first {
            crate::pool::with_num_threads(share, || sort_chunk(piece));
        }
    });
    // The slice is now `t` sorted runs; the run-adaptive stable sort
    // merges them without re-sorting within runs.
    merge_runs(slice);
}

/// Parallel iterator over immutable chunks of a slice.
pub struct ParChunks<'a, T: Sync> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }
    unsafe fn item(&self, index: usize) -> &'a [T] {
        let lo = index * self.chunk_size;
        let hi = self.slice.len().min(lo + self.chunk_size);
        &self.slice[lo..hi]
    }
}

/// Parallel iterator over disjoint mutable chunks of a slice.
///
/// Holds a raw pointer so that [`ParallelIterator::item`] can mint a
/// `&'a mut [T]` per chunk from a shared `&self`; soundness rests on the
/// trait's at-most-once-per-index contract, which makes the minted chunks
/// disjoint.
pub struct ParChunksMut<'a, T: Send> {
    ptr: *mut T,
    len: usize,
    chunk_size: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the struct is only a recipe for carving disjoint chunks; the
// driver consumes each index at most once, so no two threads ever touch
// the same elements. `T: Send` lets the chunks cross threads.
unsafe impl<T: Send> Send for ParChunksMut<'_, T> {}
unsafe impl<T: Send> Sync for ParChunksMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk_size)
    }
    unsafe fn item(&self, index: usize) -> &'a mut [T] {
        let lo = index * self.chunk_size;
        let hi = self.len.min(lo + self.chunk_size);
        // SAFETY: lo < hi <= len (driver passes index < self.len()), and
        // the at-most-once contract makes [lo, hi) disjoint from every
        // other minted chunk.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_iter_and_chunks_agree() {
        let v: Vec<u32> = (0..30_000).collect();
        let sum = std::sync::atomic::AtomicU64::new(0);
        v.par_iter().for_each(|&x| {
            sum.fetch_add(x as u64, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(
            sum.load(std::sync::atomic::Ordering::Relaxed),
            (0..30_000u64).sum::<u64>()
        );
        let chunk_sums: Vec<u64> = v
            .par_chunks(4096)
            .map(|c| c.iter().map(|&x| x as u64).sum())
            .collect();
        assert_eq!(chunk_sums.iter().sum::<u64>(), (0..30_000u64).sum::<u64>());
    }

    #[test]
    fn chunks_mut_writes_disjoint() {
        let mut v = vec![0usize; 20_000];
        v.par_chunks_mut(1000).enumerate().for_each(|(ci, chunk)| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = ci * 1000 + j;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn par_sort_matches_sequential() {
        let mut a: Vec<u64> = (0..100_000)
            .map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 17)
            .collect();
        let mut b = a.clone();
        a.par_sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn par_sort_by_key_matches_sequential() {
        let mut a: Vec<(u32, u32)> = (0..80_000)
            .map(|i: u32| (i.wrapping_mul(2654435761) % 977, i))
            .collect();
        let mut b = a.clone();
        a.par_sort_unstable_by_key(|p| p.0);
        b.sort_unstable_by_key(|p| p.0);
        let key = |v: &[(u32, u32)]| v.iter().map(|p| p.0).collect::<Vec<_>>();
        assert_eq!(key(&a), key(&b));
    }
}
