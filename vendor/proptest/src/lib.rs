//! Vendored, offline subset of [proptest](https://docs.rs/proptest).
//!
//! The build environment has no crates-registry access, so this stub
//! implements the slice of proptest the `dyncon` test suites use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! range / tuple / [`collection::vec`] / [`arbitrary::any`] strategies,
//! [`prop_oneof!`], `prop_assert!` / `prop_assert_eq!`, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted for a test-only
//! stub: inputs are generated from a **deterministic** per-test seed (so
//! CI failures reproduce exactly), and there is **no shrinking** — a
//! failing case panics with the full `Debug` rendering of its inputs
//! instead of a minimized one.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.
    /// `prop::collection::vec(...)`-style paths after a prelude glob.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the same shape as real proptest:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_test(x in 0u32..10, v in prop::collection::vec(any::<bool>(), 1..8)) {
///         prop_assert!(v.len() >= 1);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (config = $config:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    let ( $($pat,)+ ) = ( $(
                        $crate::strategy::Strategy::new_value(&($strategy), &mut rng),
                    )+ );
                    // Generation is deterministic per (name, case): inputs
                    // are re-drawn from a fresh rng only on failure, so
                    // passing cases never pay for Debug-rendering them.
                    let redraw = || {
                        let mut rng =
                            $crate::test_runner::TestRng::for_case(stringify!($name), case);
                        format!("{:#?}", ( $(
                            $crate::strategy::Strategy::new_value(&($strategy), &mut rng),
                        )+ ))
                    };
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<
                                (),
                                $crate::test_runner::TestCaseError,
                            > { $body ::std::result::Result::Ok(()) },
                        ),
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {}
                        Ok(Err($crate::test_runner::TestCaseError::Fail(reason))) => {
                            panic!(
                                "proptest case #{case} of {} failed: {reason}\ninputs: {}",
                                stringify!($name),
                                redraw(),
                            );
                        }
                        Err(payload) => {
                            // The body panicked (assert!/unwrap/internal
                            // assertion): attach the counterexample before
                            // propagating the original panic.
                            eprintln!(
                                "proptest case #{case} of {} panicked; inputs: {}",
                                stringify!($name),
                                redraw(),
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

/// Uniformly choose among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Fail the current test case (with `return Err(...)`) unless `$cond`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current test case unless `$left == $right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fail the current test case unless `$left != $right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Vectors respect their size range and element range.
        #[test]
        fn vec_sizes(v in prop::collection::vec(0u32..10, 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_maps(
            (a, b) in (0u64..5, 1usize..4).prop_map(|(x, y)| (x * 2, y)),
            flag in any::<bool>(),
        ) {
            prop_assert!(a % 2 == 0 && a < 10);
            prop_assert!((1..4).contains(&b));
            prop_assert_eq!(flag as u8 <= 1, true);
        }

        #[test]
        fn oneof_covers_arms(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }
    }

    #[test]
    fn determinism_same_name_same_values() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 5..20);
        let mut r1 = crate::test_runner::TestRng::for_case("d", 3);
        let mut r2 = crate::test_runner::TestRng::for_case("d", 3);
        assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
    }

    #[test]
    #[should_panic(expected = "body panicked on purpose")]
    fn body_panic_propagates_after_reporting_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(2))]
            #[allow(dead_code)]
            fn inner(x in 0u32..2) {
                assert!(x > 100, "body panicked on purpose");
            }
        }
        inner();
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn inner(x in 0u32..2) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
