//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification: an exact size or a range of sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        Self {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = TestRng::for_case("vec", 0);
        let exact = vec(0u32..5, 7usize);
        assert_eq!(exact.new_value(&mut rng).len(), 7);
        let ranged = vec(0u32..5, 2..5);
        for _ in 0..100 {
            let v = ranged.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
