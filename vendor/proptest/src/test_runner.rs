//! Test configuration, error type, and the deterministic RNG.

use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed an assertion (fails the whole test).
    Fail(String),
    /// The case was rejected as uninteresting (skipped, not a failure).
    Reject(String),
}

impl TestCaseError {
    /// A failed case.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }

    /// A rejected (skipped) case.
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 generator; one instance per (test, case).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed base seed: changing it re-rolls every generated suite.
    const BASE_SEED: u64 = 0x5EED_DC01_2026_0729;

    /// Seed deterministically from the test's name and case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self {
            state: Self::BASE_SEED ^ h ^ ((case as u64) << 32 | case as u64),
        }
    }

    /// Next raw 64 random bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire multiply-shift; bias is negligible for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("t", 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::for_case("bound", 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
