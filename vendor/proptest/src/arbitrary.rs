//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one value covering the whole domain of `Self`.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Full-domain strategy for `A` (see [`any`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary_value(rng)
    }
}

/// The strategy generating any value of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary_value(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_hits_both_sides() {
        let mut rng = TestRng::for_case("bool", 0);
        let s = any::<bool>();
        let (mut t, mut f) = (0, 0);
        for _ in 0..100 {
            if s.new_value(&mut rng) {
                t += 1;
            } else {
                f += 1;
            }
        }
        assert!(t > 10 && f > 10);
    }

    #[test]
    fn usize_varies() {
        let mut rng = TestRng::for_case("usize", 0);
        let s = any::<usize>();
        let a = s.new_value(&mut rng);
        let b = s.new_value(&mut rng);
        assert_ne!(a, b);
    }
}
