//! The [`Strategy`] trait and the combinators the test suites use.

use crate::test_runner::TestRng;

/// A recipe for generating values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Erase the concrete strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.new_value(rng))
    }
}

/// Output of [`crate::prop_oneof!`]: uniformly picks one arm per value.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (non-empty) list of arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

macro_rules! unsigned_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
    )*};
}
unsigned_range_strategy!(u8, u16, u32, usize);

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn new_value(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let a = (3u32..9).new_value(&mut rng);
            assert!((3..9).contains(&a));
            let b = (-5i32..5).new_value(&mut rng);
            assert!((-5..5).contains(&b));
            let c = (0u64..1).new_value(&mut rng);
            assert_eq!(c, 0);
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let u = Union::new(vec![
            Just(0u8).boxed(),
            Just(1u8).boxed(),
            Just(2u8).boxed(),
        ]);
        let mut rng = TestRng::for_case("union", 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[u.new_value(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn map_and_tuples_compose() {
        let s = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        let mut rng = TestRng::for_case("map", 0);
        for _ in 0..100 {
            assert!(s.new_value(&mut rng) < 20);
        }
    }
}
