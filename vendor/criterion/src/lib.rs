//! Vendored, offline subset of [criterion](https://docs.rs/criterion).
//!
//! The build environment has no crates-registry access, so this stub keeps
//! the `dyncon-bench` targets compiling and *running*: `cargo bench`
//! executes every registered benchmark and prints a median / mean
//! wall-clock line per benchmark id. There is no statistical analysis,
//! HTML report, or saved baseline — the numbers are honest but simple.
//!
//! Implemented surface (exactly what `crates/bench/benches/e*.rs` use):
//! `Criterion::{benchmark_group, bench_function}`, `BenchmarkGroup::{
//! sample_size, throughput, bench_function, bench_with_input, finish}`,
//! `Bencher::iter`, `BenchmarkId::{new, from_parameter}`,
//! `Throughput::{Elements, Bytes}`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the default number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.full_label(None), self.sample_size, None, |b| f(b));
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of measured iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Record the input size so per-element rates are printed.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &id.full_label(Some(&self.name)),
            self.sample_size,
            self.throughput,
            |b| f(b),
        );
        self
    }

    /// Run a benchmark that borrows a setup input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(
            &id.full_label(Some(&self.name)),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// End the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark: a function name and/or a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `function_name` at parameter `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark identified only by its parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function_name: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_label(&self, group: Option<&str>) -> String {
        let mut parts: Vec<&str> = Vec::with_capacity(3);
        if let Some(g) = group {
            parts.push(g);
        }
        if let Some(f) = self.function_name.as_deref() {
            parts.push(f);
        }
        if let Some(p) = self.parameter.as_deref() {
            parts.push(p);
        }
        parts.join("/")
    }
}

impl From<&str> for BenchmarkId {
    fn from(function_name: &str) -> Self {
        Self {
            function_name: Some(function_name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function_name: String) -> Self {
        Self {
            function_name: Some(function_name),
            parameter: None,
        }
    }
}

/// Input-size annotation for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Batch-size hint for [`Bencher::iter_batched`]. The stub times one
/// routine call per sample regardless, so the variants only mirror the
/// upstream API surface.
#[derive(Clone, Copy, Debug, Default)]
pub enum BatchSize {
    /// One input per timed call (the only behaviour the stub implements).
    #[default]
    PerIteration,
    /// Accepted for API parity; treated as `PerIteration`.
    SmallInput,
    /// Accepted for API parity; treated as `PerIteration`.
    LargeInput,
}

/// Passed to benchmark closures; measures the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` `sample_size` times (after one warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on a fresh `setup()` input per sample, **excluding
    /// the setup cost from the measurement** — the upstream
    /// `iter_batched` contract the scaling benches rely on to time an
    /// operation against a rebuilt structure without timing the rebuild.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<60} (no samples: Bencher::iter never called)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let rate = throughput.map_or(String::new(), |t| {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let secs = median.as_secs_f64();
        if secs > 0.0 {
            format!("  {:>12.3e} {unit}", count as f64 / secs)
        } else {
            String::new()
        }
    });
    println!(
        "{label:<60} median {:>12} mean {:>12}{rate}",
        Fmt(median),
        Fmt(mean)
    );
}

/// Human-friendly duration formatting (ns / µs / ms / s).
struct Fmt(Duration);

impl Display for Fmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0.as_nanos();
        if ns < 1_000 {
            write!(f, "{ns} ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2} µs", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2} ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.2} s", ns as f64 / 1e9)
        }
    }
}

/// Define a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| black_box(1 + 1));
        });
        group.bench_with_input(BenchmarkId::from_parameter("k=2"), &42u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(3 * 3)));
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", "p").full_label(Some("g")), "g/f/p");
        assert_eq!(BenchmarkId::from_parameter(7).full_label(Some("g")), "g/7");
        assert_eq!(BenchmarkId::from("plain").full_label(None), "plain");
    }
}
