//! # dyncon-suite
//!
//! Workspace umbrella for the SPAA 2019 *Parallel Batch-Dynamic Graph
//! Connectivity* reproduction. Re-exports every member crate and hosts the
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`). Start with [`core`]'s `BatchDynamicConnectivity`.

pub use dyncon_core as core;
pub use dyncon_ett as ett;
pub use dyncon_graphgen as graphgen;
pub use dyncon_hdt as hdt;
pub use dyncon_primitives as primitives;
pub use dyncon_skiplist as skiplist;
pub use dyncon_spanning as spanning;
