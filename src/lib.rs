//! # dyncon-suite
//!
//! Workspace umbrella for the SPAA 2019 *Parallel Batch-Dynamic Graph
//! Connectivity* reproduction. Re-exports every member crate and hosts the
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`).
//!
//! **Start with [`api`]**: the [`api::Builder`] constructs any backend,
//! and the [`api::Connectivity`] / [`api::BatchDynamic`] traits are the
//! workspace-wide contract — `&self` batch queries, validated mutations
//! with typed [`api::DynConError`]s, and mixed-operation batches via
//! [`api::BatchDynamic::apply`]. The paper's structure is
//! [`core::BatchDynamicConnectivity`]; the sequential HDT baseline
//! ([`hdt::HdtConnectivity`]) and the baselines/oracles in [`spanning`]
//! implement the same traits, so they interchange as
//! `Box<dyn BatchDynamic>`.
//!
//! ```
//! use dyncon::api::{BatchDynamic, Builder, Op};
//! use dyncon::core::BatchDynamicConnectivity;
//!
//! let mut g: BatchDynamicConnectivity = Builder::new(6).build()?;
//! let result = g.apply(&[
//!     Op::Insert(0, 1),
//!     Op::Insert(1, 2),
//!     Op::Query(0, 2),
//!     Op::Delete(1, 2),
//!     Op::Query(0, 2),
//! ])?;
//! assert_eq!(result.answers, vec![true, false]);
//! # Ok::<(), dyncon::api::DynConError>(())
//! ```
//!
//! For concurrent callers, [`server::ConnServer`] is the group-commit
//! serving frontend: it coalesces many clients' submissions into one
//! mixed-op batch per commit round (see the "Serving layer" section of
//! the README and `examples/concurrent_service.rs`). To survive process
//! death, wrap it as a [`durable::DurableServer`]: every sealed round is
//! appended to a checksummed write-ahead log before it is applied, and
//! [`durable::recover`] rebuilds any backend deterministically from the
//! latest snapshot plus the log tail (see the "Durability" section of
//! the README and `examples/durable_service.rs`).
//!
//! To scale past one commit pipeline, [`shard::ShardedServer`]
//! partitions the vertex universe across N shard servers (each
//! optionally durable in its own directory) and recombines cross-shard
//! reachability through a contracted boundary graph, preserving the
//! byte-determinism contract at every shard and thread count (see the
//! "Sharding" section of the README and `examples/sharded_service.rs`).
//!
//! To see where each round's time goes, attach a
//! [`trace::TraceRecorder`] via `ServerConfig::trace` and (optionally)
//! expose it with [`trace::serve_telemetry`] — per-round stage
//! breakdowns, a slow-round log, Chrome-trace export and a scrapeable
//! `/metrics`–`/trace`–`/slow` endpoint, all observational-only (see
//! the "Tracing & telemetry endpoint" section of the README and
//! `examples/telemetry.rs`).
//!
//! To push telemetry instead of waiting to be scraped, attach an
//! [`export::TelemetryExporter`]: it drains metric deltas, fresh spans
//! and slow-round captures into checksummed binary frames and ships
//! them to an [`export::Collector`] (fleet aggregation + merged
//! Prometheus re-render), never blocking the commit path. The same
//! crate's [`export::HealthState`] adds a writer-stall watchdog,
//! WAL-error/backpressure signals and SLO burn-rate windows behind
//! `/healthz` + `/readyz` (see the "Telemetry export & health" section
//! of the README and `examples/export_pipeline.rs`).

pub use dyncon_api as api;
pub use dyncon_core as core;
pub use dyncon_durable as durable;
pub use dyncon_ett as ett;
pub use dyncon_export as export;
pub use dyncon_graphgen as graphgen;
pub use dyncon_hdt as hdt;
pub use dyncon_metrics as metrics;
pub use dyncon_primitives as primitives;
pub use dyncon_server as server;
pub use dyncon_shard as shard;
pub use dyncon_skiplist as skiplist;
pub use dyncon_spanning as spanning;
pub use dyncon_trace as trace;
