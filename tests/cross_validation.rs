//! Cross-structure validation: the parallel batch-dynamic structure (both
//! deletion algorithms), the sequential HDT baseline, the static-recompute
//! baseline and the naive oracle must agree on identical operation
//! streams across qualitatively different workloads.

use dyncon_core::{BatchDynamicConnectivity, DeletionAlgorithm};
use dyncon_graphgen::{cycle, erdos_renyi, grid2d, path, rmat, star, Batch, UpdateStream};
use dyncon_hdt::HdtConnectivity;
use dyncon_primitives::SplitMix64;
use dyncon_spanning::{NaiveDynamicGraph, StaticRecompute};

fn agree_on_stream(n: usize, stream: &UpdateStream, tag: &str) {
    let mut simple = BatchDynamicConnectivity::with_algorithm(n, DeletionAlgorithm::Simple);
    let mut inter = BatchDynamicConnectivity::with_algorithm(n, DeletionAlgorithm::Interleaved);
    let mut hdt = HdtConnectivity::new(n);
    let mut stat = StaticRecompute::new(n);
    let mut oracle = NaiveDynamicGraph::new(n);

    for (bi, b) in stream.batches.iter().enumerate() {
        match b {
            Batch::Insert(v) => {
                simple.batch_insert(v);
                inter.batch_insert(v);
                stat.batch_insert(v);
                oracle.batch_insert(v);
                for &(x, y) in v {
                    hdt.insert(x, y);
                }
            }
            Batch::Delete(v) => {
                simple.batch_delete(v);
                inter.batch_delete(v);
                stat.batch_delete(v);
                oracle.batch_delete(v);
                for &(x, y) in v {
                    hdt.delete(x, y);
                }
            }
            Batch::Query(v) => {
                let expect = oracle.batch_connected(v);
                assert_eq!(
                    simple.batch_connected(v),
                    expect,
                    "{tag}: Simple, batch {bi}"
                );
                assert_eq!(
                    inter.batch_connected(v),
                    expect,
                    "{tag}: Interleaved, batch {bi}"
                );
                assert_eq!(stat.batch_connected(v), expect, "{tag}: static, batch {bi}");
                let hdt_ans: Vec<bool> = v.iter().map(|&(x, y)| hdt.connected(x, y)).collect();
                assert_eq!(hdt_ans, expect, "{tag}: HDT, batch {bi}");
            }
        }
    }
    assert_eq!(simple.num_edges(), oracle.num_edges(), "{tag}: edges");
    assert_eq!(inter.num_edges(), oracle.num_edges(), "{tag}: edges");
    assert_eq!(
        inter.num_components(),
        oracle.num_components(),
        "{tag}: components"
    );
    simple
        .check_invariants()
        .unwrap_or_else(|e| panic!("{tag}: Simple invariants: {e}"));
    inter
        .check_invariants()
        .unwrap_or_else(|e| panic!("{tag}: Interleaved invariants: {e}"));
}

/// Insert a structured graph in batches, then churn it down with a query
/// batch between every mutation.
fn churn_stream(n: usize, edges: &[(u32, u32)], batch: usize, seed: u64) -> UpdateStream {
    let mut s = UpdateStream::default();
    let mut rng = SplitMix64::new(seed);
    for chunk in edges.chunks(batch) {
        s.batches.push(Batch::Insert(chunk.to_vec()));
        s.batches.push(Batch::Query(UpdateStream::random_queries(
            n,
            16,
            rng.next_u64(),
        )));
    }
    let mut order: Vec<(u32, u32)> = edges.to_vec();
    for i in (1..order.len()).rev() {
        let j = rng.next_below((i + 1) as u64) as usize;
        order.swap(i, j);
    }
    for chunk in order.chunks(batch) {
        s.batches.push(Batch::Delete(chunk.to_vec()));
        s.batches.push(Batch::Query(UpdateStream::random_queries(
            n,
            16,
            rng.next_u64(),
        )));
    }
    s
}

#[test]
fn path_graph_churn() {
    let n = 128;
    agree_on_stream(n, &churn_stream(n, &path(n), 17, 1), "path");
}

#[test]
fn cycle_graph_churn() {
    let n = 96;
    agree_on_stream(n, &churn_stream(n, &cycle(n), 13, 2), "cycle");
}

#[test]
fn star_graph_churn() {
    let n = 128;
    agree_on_stream(n, &churn_stream(n, &star(n), 19, 3), "star");
}

#[test]
fn grid_graph_churn() {
    let n = 8 * 16;
    agree_on_stream(n, &churn_stream(n, &grid2d(8, 16), 23, 4), "grid");
}

#[test]
fn er_graph_churn() {
    let n = 120;
    let edges = erdos_renyi(n, 3 * n, 5);
    agree_on_stream(n, &churn_stream(n, &edges, 31, 6), "er");
}

#[test]
fn rmat_graph_churn() {
    let n = 128;
    let edges = rmat(n, 2 * n, 7);
    agree_on_stream(n, &churn_stream(n, &edges, 29, 8), "rmat");
}

#[test]
fn sliding_window_agreement() {
    let n = 100;
    let stream = UpdateStream::sliding_window(n, 14, 24, 4, 12, 9);
    agree_on_stream(n, &stream, "sliding-window");
}

#[test]
fn dense_graph_full_teardown() {
    let n = 24;
    let edges = dyncon_graphgen::complete(n);
    agree_on_stream(n, &churn_stream(n, &edges, 37, 10), "clique");
}
