//! Cross-backend differential validation through the unified
//! `dyncon-api` contract: every fully dynamic backend — the parallel
//! batch-dynamic structure (both deletion algorithms), the sequential HDT
//! baseline, the static-recompute baseline and the naive oracle — is
//! driven through **identical mixed-operation batches** as a
//! `Box<dyn BatchDynamic>` trait object, and every `BatchResult`
//! (insert/delete counts *and* query answers, byte for byte) must match
//! the oracle's. No per-backend adapter glue: one loop drives the panel.
//!
//! The structured churn workloads of the seed suite are kept, now
//! expressed as mixed batches; a proptest generator adds arbitrary random
//! mixed-op batches on top.

use dyncon_api::{BatchDynamic, Builder, DeletionAlgorithm, Op};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::{cycle, erdos_renyi, grid2d, path, rmat, star, UpdateStream};
use dyncon_hdt::HdtConnectivity;
use dyncon_primitives::SplitMix64;
use dyncon_spanning::{IncrementalConnectivity, NaiveDynamicGraph, StaticRecompute};
use proptest::prelude::*;

/// The fully dynamic backend panel. Index 0 is the trusted reference
/// (the naive oracle); everything else must agree with it byte for byte.
fn panel(n: usize) -> Vec<Box<dyn BatchDynamic>> {
    let b = Builder::new(n);
    vec![
        Box::new(b.build::<NaiveDynamicGraph>().unwrap()),
        Box::new(
            b.clone()
                .algorithm(DeletionAlgorithm::Simple)
                .build::<BatchDynamicConnectivity>()
                .unwrap(),
        ),
        Box::new(
            b.clone()
                .algorithm(DeletionAlgorithm::Interleaved)
                .build::<BatchDynamicConnectivity>()
                .unwrap(),
        ),
        Box::new(b.build::<HdtConnectivity>().unwrap()),
        Box::new(b.build::<StaticRecompute>().unwrap()),
    ]
}

/// Drive the whole panel through identical mixed-op batches: identical
/// `BatchResult`s per batch, identical final component structure, and
/// every backend's own invariant checker must pass.
fn agree_on_batches(n: usize, batches: &[Vec<Op>], tag: &str) {
    let mut panel = panel(n);
    for (bi, ops) in batches.iter().enumerate() {
        let reference = panel[0]
            .apply(ops)
            .unwrap_or_else(|e| panic!("{tag}: oracle rejected batch {bi}: {e}"));
        for g in panel.iter_mut().skip(1) {
            let name = g.backend_name();
            let got = g
                .apply(ops)
                .unwrap_or_else(|e| panic!("{tag}: {name} rejected batch {bi}: {e}"));
            assert_eq!(got, reference, "{tag}: {name} diverged on batch {bi}");
        }
    }
    let comps = panel[0].num_components();
    for g in &panel {
        let name = g.backend_name();
        assert_eq!(g.num_components(), comps, "{tag}: {name} component count");
        g.check()
            .unwrap_or_else(|e| panic!("{tag}: {name} invariants: {e}"));
    }
}

/// Build a structured graph in chunks with queries *interleaved inside*
/// every mutation batch, then churn it back down the same way.
fn churn_batches(n: usize, edges: &[(u32, u32)], batch: usize, seed: u64) -> Vec<Vec<Op>> {
    let mut rng = SplitMix64::new(seed);
    let rand_query = |rng: &mut SplitMix64, ops: &mut Vec<Op>| {
        ops.push(Op::Query(
            rng.next_below(n as u64) as u32,
            rng.next_below(n as u64) as u32,
        ));
    };
    let mut batches = Vec::new();
    for chunk in edges.chunks(batch) {
        let mut ops = Vec::with_capacity(2 * chunk.len());
        for (i, &(u, v)) in chunk.iter().enumerate() {
            ops.push(Op::Insert(u, v));
            if i % 3 == 0 {
                rand_query(&mut rng, &mut ops);
            }
        }
        for _ in 0..8 {
            rand_query(&mut rng, &mut ops);
        }
        batches.push(ops);
    }
    let mut order: Vec<(u32, u32)> = edges.to_vec();
    for i in (1..order.len()).rev() {
        let j = rng.next_below((i + 1) as u64) as usize;
        order.swap(i, j);
    }
    for chunk in order.chunks(batch) {
        let mut ops = Vec::with_capacity(2 * chunk.len());
        for (i, &(u, v)) in chunk.iter().enumerate() {
            ops.push(Op::Delete(u, v));
            if i % 3 == 1 {
                rand_query(&mut rng, &mut ops);
            }
        }
        for _ in 0..8 {
            rand_query(&mut rng, &mut ops);
        }
        batches.push(ops);
    }
    batches
}

#[test]
fn path_graph_churn() {
    let n = 128;
    agree_on_batches(n, &churn_batches(n, &path(n), 17, 1), "path");
}

#[test]
fn cycle_graph_churn() {
    let n = 96;
    agree_on_batches(n, &churn_batches(n, &cycle(n), 13, 2), "cycle");
}

#[test]
fn star_graph_churn() {
    let n = 128;
    agree_on_batches(n, &churn_batches(n, &star(n), 19, 3), "star");
}

#[test]
fn grid_graph_churn() {
    let n = 8 * 16;
    agree_on_batches(n, &churn_batches(n, &grid2d(8, 16), 23, 4), "grid");
}

#[test]
fn er_graph_churn() {
    let n = 120;
    let edges = erdos_renyi(n, 3 * n, 5);
    agree_on_batches(n, &churn_batches(n, &edges, 31, 6), "er");
}

#[test]
fn rmat_graph_churn() {
    let n = 128;
    let edges = rmat(n, 2 * n, 7);
    agree_on_batches(n, &churn_batches(n, &edges, 29, 8), "rmat");
}

#[test]
fn sliding_window_agreement() {
    let n = 100;
    let stream = UpdateStream::sliding_window(n, 14, 24, 4, 12, 9);
    agree_on_batches(n, &dyncon_bench::stream_ops(&stream), "sliding-window");
}

#[test]
fn dense_graph_full_teardown() {
    let n = 24;
    let edges = dyncon_graphgen::complete(n);
    agree_on_batches(n, &churn_batches(n, &edges, 37, 10), "clique");
}

#[test]
fn insert_only_panel_includes_union_find() {
    // The insert-only union-find baseline joins the panel for streams
    // without deletions. Its `inserted` counts are op-counts (a DSU
    // tracks no edge set), so only query answers are compared for it.
    let n = 64;
    let b = Builder::new(n);
    let mut oracle: Box<dyn BatchDynamic> = Box::new(b.build::<NaiveDynamicGraph>().unwrap());
    let mut others: Vec<Box<dyn BatchDynamic>> = vec![
        Box::new(b.build::<BatchDynamicConnectivity>().unwrap()),
        Box::new(b.build::<HdtConnectivity>().unwrap()),
        Box::new(b.build::<StaticRecompute>().unwrap()),
    ];
    let mut uf: Box<dyn BatchDynamic> = Box::new(b.build::<IncrementalConnectivity>().unwrap());

    let mut rng = SplitMix64::new(77);
    for round in 0..12 {
        let mut ops = Vec::new();
        for _ in 0..10 {
            let (u, v) = (
                rng.next_below(n as u64) as u32,
                rng.next_below(n as u64) as u32,
            );
            ops.push(Op::Insert(u, v));
            ops.push(Op::Query(u, rng.next_below(n as u64) as u32));
        }
        let reference = oracle.apply(&ops).unwrap();
        for g in &mut others {
            let got = g.apply(&ops).unwrap();
            assert_eq!(got, reference, "{}: round {round}", g.backend_name());
        }
        let got = uf.apply(&ops).unwrap();
        assert_eq!(
            got.answers, reference.answers,
            "union-find answers, round {round}"
        );
    }
    assert_eq!(uf.num_components(), oracle.num_components());
    for v in [0u32, 17, 63] {
        assert_eq!(
            uf.component_size(v),
            oracle.component_size(v),
            "size of {v}"
        );
    }
}

// ---------------------------------------------------------------------
// Cross-thread-count determinism: the tentpole contract of the parallel
// hot paths. Identical mixed-op batches through `apply()` must produce
// **byte-identical** `BatchResult`s at 1, 2 and 4 threads — and, beyond
// the letter of the contract, the whole observable structure must match:
// component count, size distribution, the certifying spanning forest and
// every statistics counter. Any unordered concurrent write or racy
// tie-break anywhere in the batch pipeline shows up here.
// ---------------------------------------------------------------------

/// Everything observable about a structure after a script.
type Observation = (
    Vec<dyncon_api::BatchResult>,
    usize,
    Vec<u64>,
    Vec<(u32, u32)>,
    dyncon_core::Stats,
);

/// Run `batches` through a fresh structure under a pool pinned to
/// `threads` workers.
fn observe_at_threads(
    threads: usize,
    algo: DeletionAlgorithm,
    n: usize,
    batches: &[Vec<Op>],
) -> Observation {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| {
        let mut g = Builder::new(n)
            .algorithm(algo)
            .build::<BatchDynamicConnectivity>()
            .unwrap();
        let results: Vec<dyncon_api::BatchResult> = batches
            .iter()
            .map(|ops| g.apply(ops).expect("valid batch"))
            .collect();
        g.check_invariants().expect("invariants");
        let mut forest = g.spanning_forest_edges();
        forest.sort_unstable();
        let comps = BatchDynamicConnectivity::num_components(&g);
        (
            results,
            comps,
            g.component_size_distribution(),
            forest,
            g.stats(),
        )
    })
}

fn assert_thread_invariant(algo: DeletionAlgorithm, n: usize, batches: &[Vec<Op>], tag: &str) {
    let reference = observe_at_threads(1, algo, n, batches);
    for threads in [2usize, 4] {
        let got = observe_at_threads(threads, algo, n, batches);
        assert_eq!(
            got.0, reference.0,
            "{tag}/{algo:?}: BatchResults diverged at {threads} threads"
        );
        assert_eq!(
            got.1, reference.1,
            "{tag}/{algo:?}: component count diverged at {threads} threads"
        );
        assert_eq!(
            got.2, reference.2,
            "{tag}/{algo:?}: size distribution diverged at {threads} threads"
        );
        assert_eq!(
            got.3, reference.3,
            "{tag}/{algo:?}: spanning forest diverged at {threads} threads"
        );
        assert_eq!(
            got.4, reference.4,
            "{tag}/{algo:?}: statistics diverged at {threads} threads"
        );
    }
}

#[test]
fn cross_thread_determinism_large_batches() {
    // Batches well above the sequential threshold (1024), so every
    // parallel path — semisort scatter, pack, spanning forest hooking,
    // replacement search fan-out — actually runs multi-threaded.
    let n = 4096;
    let edges = erdos_renyi(n, 3 * n, 21);
    let mut batches: Vec<Vec<Op>> = Vec::new();
    // One giant insert batch, then chunked deletions with queries mixed in.
    batches.push(edges.iter().map(|&(u, v)| Op::Insert(u, v)).collect());
    let queries = UpdateStream::random_queries(n, 64, 22);
    for chunk in edges.chunks(2048).take(3) {
        let mut ops: Vec<Op> = chunk.iter().map(|&(u, v)| Op::Delete(u, v)).collect();
        ops.extend(queries.iter().map(|&(u, v)| Op::Query(u, v)));
        batches.push(ops);
    }
    for algo in [DeletionAlgorithm::Simple, DeletionAlgorithm::Interleaved] {
        assert_thread_invariant(algo, n, &batches, "large-batch");
    }
}

#[test]
fn cross_thread_determinism_structured_churn() {
    let n = 512;
    let edges = grid2d(16, 32);
    let batches = churn_batches(n, &edges, 256, 23);
    for algo in [DeletionAlgorithm::Simple, DeletionAlgorithm::Interleaved] {
        assert_thread_invariant(algo, n, &batches, "grid-churn");
    }
}

const N: u32 = 12;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..N, 0..N).prop_map(|(u, v)| Op::Insert(u, v)),
        (0..N, 0..N).prop_map(|(u, v)| Op::Delete(u, v)),
        (0..N, 0..N).prop_map(|(u, v)| Op::Query(u, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The differential property test of the unified API: arbitrary
    /// random mixed-op batches (inserts, deletes — present or absent —
    /// and queries interleaved freely, self-loops and duplicates
    /// included) produce byte-identical `BatchResult`s across the whole
    /// trait-object panel.
    #[test]
    fn differential_random_mixed_batches(
        batches in prop::collection::vec(
            prop::collection::vec(op_strategy(), 1..16),
            1..24,
        )
    ) {
        let mut panel = panel(N as usize);
        for (bi, ops) in batches.iter().enumerate() {
            let reference = panel[0].apply(ops).unwrap();
            for g in panel.iter_mut().skip(1) {
                let got = g.apply(ops).unwrap();
                prop_assert_eq!(
                    &got,
                    &reference,
                    "{} diverged on batch {}",
                    g.backend_name(),
                    bi
                );
            }
        }
        let comps = panel[0].num_components();
        for g in &panel {
            prop_assert_eq!(g.num_components(), comps, "{}", g.backend_name());
            for v in 0..N {
                prop_assert_eq!(
                    g.component_size(v),
                    panel[0].component_size(v),
                    "{} size of {}",
                    g.backend_name(),
                    v
                );
            }
            g.check().map_err(TestCaseError::fail)?;
        }
    }

    /// The determinism contract at property-test scale: arbitrary mixed
    /// batches observe the same results, forest and statistics at 1, 2
    /// and 4 threads.
    #[test]
    fn cross_thread_determinism_random_batches(
        batches in prop::collection::vec(
            prop::collection::vec(op_strategy(), 1..16),
            1..12,
        )
    ) {
        for algo in [DeletionAlgorithm::Simple, DeletionAlgorithm::Interleaved] {
            let reference = observe_at_threads(1, algo, N as usize, &batches);
            for threads in [2usize, 4] {
                let got = observe_at_threads(threads, algo, N as usize, &batches);
                prop_assert_eq!(
                    &got,
                    &reference,
                    "{:?} diverged at {} threads",
                    algo,
                    threads
                );
            }
        }
    }
}

proptest! {
    // Fewer cases than the in-process panel: every case spins up real
    // server threads (10 writers plus their rayon pools across the
    // three shard counts).
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The sharding layer joins the differential property test:
    /// arbitrary random mixed-op batches through a
    /// [`ShardedBackend`](dyncon_shard::ShardedBackend) — whose
    /// per-shard servers run real writer threads and whose cross-shard
    /// queries go through the contracted boundary graph — must produce
    /// `BatchResult`s byte-identical to the naive oracle at every
    /// tested shard count, plus matching component aggregates and edge
    /// sets.
    #[test]
    fn sharded_differential_random_mixed_batches(
        batches in prop::collection::vec(
            prop::collection::vec(op_strategy(), 1..16),
            1..12,
        )
    ) {
        use dyncon_api::{Connectivity, ExportEdges};
        use dyncon_shard::{ShardConfig, ShardMapKind, ShardedBackend};
        let mut oracle = Builder::new(N as usize).build::<NaiveDynamicGraph>().unwrap();
        let mut sharded: Vec<ShardedBackend<BatchDynamicConnectivity>> = [1usize, 2, 4]
            .iter()
            .map(|&shards| {
                let config = ShardConfig::new()
                    .shards(shards)
                    .kind(ShardMapKind::Hash)
                    .shard_worker_threads(2);
                ShardedBackend::start(N as usize, &config, dyncon_metrics::Registry::new())
                    .unwrap()
            })
            .collect();
        for (bi, ops) in batches.iter().enumerate() {
            let reference = oracle.apply(ops).unwrap();
            for (si, g) in sharded.iter_mut().enumerate() {
                let got = g.apply(ops).unwrap();
                prop_assert_eq!(
                    &got,
                    &reference,
                    "{} shards diverged on batch {}",
                    [1usize, 2, 4][si],
                    bi
                );
            }
        }
        for g in sharded {
            prop_assert_eq!(g.num_components(), oracle.num_components());
            prop_assert_eq!(g.export_edges(), oracle.export_edges());
            g.check().map_err(TestCaseError::fail)?;
            g.shutdown().map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
    }
}
