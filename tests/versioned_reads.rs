//! MVCC versioned reads, end to end: a [`ReadView`] at version `v` must
//! answer `connected` / `component_groups` / `export_edges`
//! **byte-identically** to a naive oracle replayed through round `v` —
//! at every worker thread count × shard count combination, for views
//! taken mid-burst, for stale views held across later commits, and for
//! views of recovered state after a restart.

use dyncon_api::{Connectivity, ExportEdges, Op, OpKind, ReadView, VersionedRead};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_durable::{scratch_dir, DurableConfig, DurableServer};
use dyncon_graphgen::zipf_client_schedules;
use dyncon_server::{ConnServer, DynConError, ServerConfig, SubmitOptions};
use dyncon_shard::{ShardConfig, ShardedServer};
use dyncon_spanning::NaiveDynamicGraph;
use proptest::prelude::*;

/// Replay canonical (client-major) rounds through the naive oracle and
/// return the expected [`ReadView`] of every version: `expected[v]` is
/// the state after rounds `0..=v`.
fn oracle_views(n: usize, rounds: &[Vec<Op>]) -> Vec<ReadView> {
    let mut oracle = NaiveDynamicGraph::new(n);
    rounds
        .iter()
        .enumerate()
        .map(|(v, ops)| {
            for op in ops {
                match op {
                    Op::Insert(u, w) => {
                        oracle.insert(*u, *w);
                    }
                    Op::Delete(u, w) => {
                        oracle.delete(*u, *w);
                    }
                    Op::Query(..) => {}
                }
            }
            ReadView::build(n, v as u64, oracle.export_edges())
        })
        .collect()
}

/// The canonical round sequence a deterministic server commits from
/// per-client schedules: client-major within each sealed round.
fn canonical_rounds(schedules: &[Vec<Vec<Op>>], rounds: usize) -> Vec<Vec<Op>> {
    (0..rounds)
        .map(|r| {
            schedules
                .iter()
                .flat_map(|sched| sched[r].iter().copied())
                .collect()
        })
        .collect()
}

/// A view must be byte-identical to the oracle's: same labels, same
/// edges, same component census, same group labeling.
fn assert_view_matches(view: &ReadView, expected: &ReadView, context: &str) {
    assert_eq!(view.version(), expected.version(), "{context}: version");
    assert_eq!(
        view.component_labels(),
        expected.component_labels(),
        "{context}: labels at v{}",
        view.version()
    );
    assert_eq!(
        view.edges(),
        expected.edges(),
        "{context}: edges at v{}",
        view.version()
    );
    assert_eq!(
        view.num_components(),
        expected.num_components(),
        "{context}"
    );
    let probe: Vec<u32> = (0..view.num_vertices() as u32).rev().collect();
    assert_eq!(
        view.component_groups(&probe),
        expected.component_groups(&probe),
        "{context}: component_groups at v{}",
        view.version()
    );
}

/// The tentpole acceptance matrix: a deterministic versioned server's
/// views match the oracle replay at worker threads {1,2,4}, with views
/// grabbed mid-burst and stale views held to the end.
#[test]
fn unsharded_views_match_oracle_replay_across_threads() {
    const N: usize = 96;
    const CLIENTS: usize = 3;
    const ROUNDS: usize = 6;
    let schedules = zipf_client_schedules(N, CLIENTS, ROUNDS, 24, 0.4, 1.1, 47);
    let expected = oracle_views(N, &canonical_rounds(&schedules, ROUNDS));
    for threads in [1usize, 2, 4] {
        let server = ConnServer::start_versioned(
            BatchDynamicConnectivity::new(N),
            ServerConfig::new()
                .deterministic(true)
                .worker_threads(threads)
                .retain_views(ROUNDS)
                .queue_capacity(CLIENTS * ROUNDS),
        );
        let mut held: Vec<ReadView> = Vec::new();
        for round in 0..ROUNDS {
            let tickets: Vec<_> = schedules
                .iter()
                .enumerate()
                .map(|(c, sched)| {
                    server
                        .submit_with(
                            sched[round].clone(),
                            SubmitOptions::new().as_client(c as u64),
                        )
                        .unwrap()
                })
                .collect();
            server.seal_round();
            for t in tickets {
                assert_eq!(t.wait().unwrap().version, round as u64);
            }
            // Mid-burst: grab the just-committed version while later
            // rounds are still coming, and hold it to the end.
            let view = server.read_view().unwrap();
            assert_view_matches(&view, &expected[round], "mid-burst");
            held.push(view);
        }
        // Stale views held across later commits still answer as of
        // their version, and the retained window serves every version.
        for (v, view) in held.iter().enumerate() {
            assert_view_matches(view, &expected[v], "held");
            let refetched = server.read_view_at(v as u64).unwrap();
            assert_view_matches(&refetched, &expected[v], "refetched");
        }
        assert_eq!(server.version_window(), Some((0, ROUNDS as u64 - 1)));
        server.join();
    }
}

/// The same matrix through the sharding layer: per-shard states and the
/// boundary graph are pinned at one outer version, so the global view is
/// byte-identical to the unsharded oracle at every shard count × thread
/// count (shard counts from `DYNCON_SHARDS`, like the CI matrix).
#[test]
fn sharded_views_match_oracle_replay_across_shards_and_threads() {
    const N: usize = 96;
    const CLIENTS: usize = 3;
    const ROUNDS: usize = 5;
    let schedules = zipf_client_schedules(N, CLIENTS, ROUNDS, 24, 0.4, 1.1, 53);
    let expected = oracle_views(N, &canonical_rounds(&schedules, ROUNDS));
    for shards in dyncon_bench::shard_counts() {
        for threads in [1usize, 2, 4] {
            let server: ShardedServer<BatchDynamicConnectivity> = ShardedServer::start(
                N,
                ShardConfig::new()
                    .shards(shards)
                    .deterministic(true)
                    .shard_worker_threads(threads)
                    .retain_views(ROUNDS)
                    .queue_capacity(CLIENTS * ROUNDS),
            )
            .unwrap();
            for round in 0..ROUNDS {
                let tickets: Vec<_> = schedules
                    .iter()
                    .enumerate()
                    .map(|(c, sched)| {
                        server
                            .submit_with(
                                sched[round].clone(),
                                SubmitOptions::new().as_client(c as u64),
                            )
                            .unwrap()
                    })
                    .collect();
                server.seal_round();
                for t in tickets {
                    assert_eq!(t.wait().unwrap().version, round as u64);
                }
                // The view of a committed version is available the moment
                // its tickets resolve (publish happens before ticket fill).
                let view = server.read_view_at(round as u64).unwrap();
                assert_view_matches(
                    &view,
                    &expected[round],
                    &format!("{shards} shards x {threads} threads"),
                );
            }
            server.join().unwrap();
        }
    }
}

/// Versions outside the retention window fail typed, with the retained
/// bounds in the error; an empty window is its own distinguishable case.
#[test]
fn window_eviction_and_empty_window_are_typed_errors() {
    let server = ConnServer::start_versioned(
        BatchDynamicConnectivity::new(8),
        ServerConfig::new().deterministic(true).retain_views(2),
    );
    // Empty window: nothing committed yet (oldest > newest encoding).
    match server.read_view().unwrap_err() {
        DynConError::UnknownVersion { oldest, newest, .. } => {
            assert!(oldest > newest, "empty-window encoding")
        }
        other => panic!("unexpected error {other:?}"),
    }
    for i in 0..4u32 {
        let t = server.submit_as(0, vec![Op::Insert(i, i + 1)]).unwrap();
        server.seal_round();
        t.wait().unwrap();
    }
    assert_eq!(server.version_window(), Some((2, 3)));
    assert_eq!(
        server.read_view_at(0).unwrap_err(),
        DynConError::UnknownVersion {
            requested: 0,
            oldest: 2,
            newest: 3
        }
    );
    assert_eq!(
        server.read_view_at(11).unwrap_err(),
        DynConError::UnknownVersion {
            requested: 11,
            oldest: 2,
            newest: 3
        }
    );
    server.join();
}

/// The read-your-writes fence through the sharding layer, in throughput
/// mode: a fenced request admitted after version `v` observes the write
/// that committed as `v`.
#[test]
fn sharded_fence_reads_its_own_writes() {
    let server: ShardedServer<BatchDynamicConnectivity> = ShardedServer::start(
        128,
        ShardConfig::new()
            .shards(2)
            .retain_views(4)
            .coalesce_wait(std::time::Duration::from_micros(50)),
    )
    .unwrap();
    // A cross-shard edge under hash partitioning.
    let write = server
        .submit_with(vec![Op::Insert(0, 65)], SubmitOptions::new().blocking(true))
        .unwrap()
        .wait()
        .unwrap();
    let read = server
        .submit_with(
            vec![Op::Query(0, 65)],
            SubmitOptions::new()
                .blocking(true)
                .min_version(write.version),
        )
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(read.answers, vec![true]);
    assert!(read.version > write.version);
    // The fenced version's view agrees.
    assert!(server.read_view_at(write.version).unwrap().connected(0, 65));
    server.join().unwrap();
}

/// Versions survive restarts: after recovery the durable server republishes
/// the recovered state under its WAL version, and its view matches the
/// oracle replay of the pre-restart history.
#[test]
fn recovered_views_match_pre_restart_oracle() {
    const N: usize = 64;
    const ROUNDS: usize = 4;
    let schedules = zipf_client_schedules(N, 1, ROUNDS, 16, 0.3, 1.1, 71);
    let rounds = canonical_rounds(&schedules, ROUNDS);
    let expected = oracle_views(N, &rounds);
    let dir = scratch_dir("versioned-recovery");
    {
        let (server, _) = DurableServer::<BatchDynamicConnectivity>::open(
            &dir,
            N,
            ServerConfig::new().deterministic(true).retain_views(8),
            DurableConfig::new().compact_on_join(false),
        )
        .unwrap();
        for (v, ops) in rounds.iter().enumerate() {
            let t = server.submit_as(0, ops.clone()).unwrap();
            server.seal_round();
            assert_eq!(t.wait().unwrap().version, v as u64);
        }
        server.join().unwrap();
    }
    // Second lifetime: the recovered state is version ROUNDS-1, published
    // at open — same labels and edges as the oracle's view of it.
    let (server, meta) = DurableServer::<BatchDynamicConnectivity>::open(
        &dir,
        N,
        ServerConfig::new().deterministic(true).retain_views(8),
        DurableConfig::new(),
    )
    .unwrap();
    assert_eq!(meta.next_round, ROUNDS as u64);
    assert_eq!(
        server.version_window(),
        Some((ROUNDS as u64 - 1, ROUNDS as u64 - 1))
    );
    let recovered = server.read_view().unwrap();
    assert_view_matches(&recovered, &expected[ROUNDS - 1], "recovered");
    // And new commits continue the WAL numbering past the recovered view.
    let t = server.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
    server.seal_round();
    assert_eq!(t.wait().unwrap().version, ROUNDS as u64);
    server.join().unwrap();
}

const PROP_N: u32 = 12;

fn prop_edge() -> impl Strategy<Value = (u32, u32)> {
    // Distinct endpoints: map a collision onto the next vertex.
    (0..PROP_N, 0..PROP_N).prop_map(|(u, v)| {
        if u == v {
            (u, (v + 1) % PROP_N)
        } else {
            (u, v)
        }
    })
}

fn prop_round() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            prop_edge().prop_map(|(u, v)| Op::Insert(u, v)),
            prop_edge().prop_map(|(u, v)| Op::Delete(u, v)),
            prop_edge().prop_map(|(u, v)| Op::Query(u, v)),
        ],
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary mutation rounds, with stale reads interleaved: after
    /// every commit, the view of every retained version still matches the
    /// naive oracle replayed through exactly that round — byte-identical
    /// labels and edges, and `connected` agreeing with the oracle's
    /// answers as of that version.
    #[test]
    fn stale_views_answer_as_of_their_version(
        rounds in prop::collection::vec(prop_round(), 1..8)
    ) {
        let n = PROP_N as usize;
        let expected = oracle_views(n, &rounds);
        let server = ConnServer::start_versioned(
            BatchDynamicConnectivity::new(n),
            ServerConfig::new().deterministic(true).retain_views(16),
        );
        for (v, ops) in rounds.iter().enumerate() {
            let queries = ops.iter().filter(|o| o.kind() == OpKind::Query).count();
            let t = server.submit_as(0, ops.clone()).unwrap();
            server.seal_round();
            let r = t.wait().unwrap();
            prop_assert_eq!(r.version, v as u64);
            prop_assert_eq!(r.answers.len(), queries);
            // Interleaved stale reads: every retained version, re-checked
            // after this round's mutations landed.
            for (stale, want) in expected.iter().enumerate().take(v + 1) {
                let view = server.read_view_at(stale as u64).unwrap();
                prop_assert_eq!(view.component_labels(), want.component_labels());
                prop_assert_eq!(view.edges(), want.edges());
                for op in ops {
                    let (qu, qv) = match *op {
                        Op::Insert(a, b) | Op::Delete(a, b) | Op::Query(a, b) => (a, b),
                    };
                    prop_assert_eq!(view.connected(qu, qv), want.connected(qu, qv));
                }
            }
        }
        server.join();
    }
}
