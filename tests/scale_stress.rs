//! Moderate-scale stress: thousands of vertices, full churn, oracle
//! agreement sampled throughout and full invariant verification at the
//! checkpoints. Complements the small exhaustive model tests (which check
//! invariants after *every* batch) with sheer volume.

use dyncon_core::{BatchDynamicConnectivity, Builder, DeletionAlgorithm};
use dyncon_graphgen::{erdos_renyi, grid2d, UpdateStream};
use dyncon_primitives::SplitMix64;
use dyncon_spanning::NaiveDynamicGraph;

fn churn(
    algo: DeletionAlgorithm,
    n: usize,
    edges: &[(u32, u32)],
    batch: usize,
    seed: u64,
    checkpoints: usize,
) {
    let mut g: BatchDynamicConnectivity = Builder::new(n).algorithm(algo).build().unwrap();
    let mut oracle = NaiveDynamicGraph::new(n);
    let mut rng = SplitMix64::new(seed);

    // Build up.
    for chunk in edges.chunks(batch) {
        g.batch_insert(chunk);
        oracle.batch_insert(chunk);
    }
    // Churn: delete a random slice, re-insert half of it, query.
    let mut live: Vec<(u32, u32)> = edges.to_vec();
    let rounds = 8;
    for round in 0..rounds {
        for i in (1..live.len()).rev() {
            let j = rng.next_below((i + 1) as u64) as usize;
            live.swap(i, j);
        }
        let cut = (live.len() / 4).max(1).min(live.len());
        let victims: Vec<(u32, u32)> = live.drain(..cut).collect();
        g.batch_delete(&victims);
        oracle.batch_delete(&victims);
        let back: Vec<(u32, u32)> = victims.iter().copied().step_by(2).collect();
        g.batch_insert(&back);
        oracle.batch_insert(&back);
        live.extend_from_slice(&back);

        let queries = UpdateStream::random_queries(n, 64, rng.next_u64());
        assert_eq!(
            g.batch_connected(&queries),
            oracle.batch_connected(&queries),
            "round {round}"
        );
        assert_eq!(g.num_edges(), oracle.num_edges(), "round {round}");
        assert_eq!(g.num_components(), oracle.num_components(), "round {round}");
        if round % (rounds / checkpoints.max(1)).max(1) == 0 {
            g.check_invariants()
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
    }
    g.check_invariants().unwrap();
}

#[test]
fn er_2k_vertices_interleaved() {
    let n = 2048;
    let edges = erdos_renyi(n, 2 * n, 101);
    churn(DeletionAlgorithm::Interleaved, n, &edges, 512, 1, 2);
}

#[test]
fn er_2k_vertices_simple() {
    let n = 2048;
    let edges = erdos_renyi(n, 2 * n, 102);
    churn(DeletionAlgorithm::Simple, n, &edges, 512, 2, 2);
}

#[test]
fn grid_stress() {
    let (r, c) = (48, 48);
    let edges = grid2d(r, c);
    churn(DeletionAlgorithm::Interleaved, r * c, &edges, 1024, 3, 2);
}

#[test]
fn giant_single_batches() {
    // Everything in one insert batch; everything out in one delete batch;
    // twice, to exercise slot/arena recycling at scale.
    let n = 4096;
    let edges = erdos_renyi(n, 3 * n, 103);
    let mut g = BatchDynamicConnectivity::new(n);
    for _ in 0..2 {
        g.batch_insert(&edges);
        assert!(g.num_components() < n / 8, "ER at m=3n is mostly connected");
        g.batch_delete(&edges);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_components(), n);
    }
    g.check_invariants().unwrap();
}
