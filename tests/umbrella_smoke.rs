//! Workspace-level smoke test exercising the umbrella crate's re-export
//! surface in `src/lib.rs`: everything here goes through `dyncon::*`
//! paths (not the member crates directly), so a broken re-export fails
//! this test even if the members themselves are healthy.

use dyncon::core::BatchDynamicConnectivity;
use dyncon::graphgen::{grid2d, path, UpdateStream};

#[test]
fn umbrella_reexports_build_a_graph() {
    let n = 64usize;
    let mut g = BatchDynamicConnectivity::new(n);
    assert_eq!(g.num_components(), n);

    // A path connects everything into one component.
    g.batch_insert(&path(n));
    assert_eq!(g.num_components(), 1);
    assert!(g.connected(0, (n - 1) as u32));

    // Cutting one interior edge splits it in two.
    g.batch_delete(&[(10, 11)]);
    assert_eq!(g.num_components(), 2);
    assert!(!g.connected(0, (n - 1) as u32));
    assert!(g.connected(0, 10));
    assert_eq!(g.component_size(0), 11);

    // Batch queries agree with scalar queries.
    let queries = [(0u32, 10u32), (0, 11), (11, (n - 1) as u32)];
    assert_eq!(g.batch_connected(&queries), vec![true, false, true]);
}

#[test]
fn umbrella_exposes_the_unified_api() {
    use dyncon::api::{BatchDynamic, Builder, Op};

    let mut backends: Vec<Box<dyn BatchDynamic>> = vec![
        Box::new(
            Builder::new(8)
                .build::<dyncon::core::BatchDynamicConnectivity>()
                .unwrap(),
        ),
        Box::new(
            Builder::new(8)
                .build::<dyncon::hdt::HdtConnectivity>()
                .unwrap(),
        ),
        Box::new(
            Builder::new(8)
                .build::<dyncon::spanning::StaticRecompute>()
                .unwrap(),
        ),
    ];
    for g in &mut backends {
        let res = g
            .apply(&[Op::Insert(0, 1), Op::Query(0, 1), Op::Delete(0, 1)])
            .unwrap();
        assert_eq!(res.answers, vec![true], "{}", g.backend_name());
        assert_eq!(g.num_components(), 8);
    }
    // The typed error type is reachable through the umbrella too.
    let _ = dyncon::api::DynConError::InvalidVertexCount { requested: 0 };
}

#[test]
fn umbrella_reexports_cover_every_member() {
    // Touch one symbol from each re-exported member crate so a dropped
    // `pub use` in src/lib.rs cannot slip through.
    let seed = dyncon::primitives::SplitMix64::new(7).next_u64();
    let _ = dyncon::skiplist::NIL;
    let mut forest = dyncon::ett::EulerTourForest::new(4, seed);
    forest.link(0, 1, true);
    assert!(forest.connected(0, 1));
    let mut hdt = dyncon::hdt::HdtConnectivity::new(4);
    assert!(hdt.insert(0, 1));
    let mut uf = dyncon::spanning::UnionFind::new(4);
    uf.union(2, 3);
    assert_eq!(uf.find(2), uf.find(3));

    let edges = grid2d(4, 4);
    let stream = UpdateStream::insert_then_delete(&edges, 8, 4, 13);
    assert!(stream.total_ops() >= edges.len());

    // The serving and durable layers are reachable through the umbrella.
    let server = dyncon::server::ConnServer::start(
        BatchDynamicConnectivity::new(4),
        dyncon::server::ServerConfig::new(),
    );
    server
        .submit(vec![dyncon::api::Op::Insert(0, 1)])
        .unwrap()
        .wait()
        .unwrap();
    assert!(server.join().backend.connected(0, 1));

    let dir = dyncon::durable::scratch_dir("umbrella");
    std::fs::create_dir_all(&dir).unwrap();
    let mut wal =
        dyncon::durable::WalWriter::open(&dir, dyncon::durable::FsyncPolicy::Never, 0).unwrap();
    wal.append_round(&[dyncon::api::Op::Insert(0, 1)]).unwrap();
    drop(wal);
    let readout = dyncon::durable::read_wal(&dir).unwrap().unwrap();
    assert_eq!(readout.records.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
