//! Determinism guarantees: identical seeds and scripts must produce
//! identical observable behaviour across runs — the property every
//! "reproducible experiments" claim in EXPERIMENTS.md rests on.

use dyncon_api::BatchDynamic;
use dyncon_core::{BatchDynamicConnectivity, Builder, DeletionAlgorithm};
use dyncon_graphgen::{erdos_renyi, rmat, zipf_client_schedules, UpdateStream};
use dyncon_server::{ConnServer, RoundRecord, ServerConfig};

fn observe(algo: DeletionAlgorithm, seed: u64) -> (Vec<bool>, usize, Vec<u64>, u64) {
    let n = 256;
    let edges = erdos_renyi(n, 3 * n, seed);
    let stream = UpdateStream::insert_then_delete(&edges, 64, 32, seed ^ 1);
    let mut g: BatchDynamicConnectivity = Builder::new(n).algorithm(algo).build().unwrap();
    for b in &stream.batches {
        match b {
            dyncon_graphgen::Batch::Insert(v) => {
                g.batch_insert(v);
            }
            dyncon_graphgen::Batch::Delete(v) => {
                g.batch_delete(v);
            }
            dyncon_graphgen::Batch::Query(v) => {
                g.batch_connected(v);
            }
        }
        // Observe midway too.
        if g.num_edges() == edges.len() / 2 {
            break;
        }
    }
    let queries = UpdateStream::random_queries(n, 128, seed ^ 2);
    let answers = g.batch_connected(&queries);
    (
        answers,
        g.num_components(),
        g.component_size_distribution(),
        g.stats().replacements,
    )
}

#[test]
fn workload_generators_are_deterministic() {
    assert_eq!(erdos_renyi(500, 1500, 9), erdos_renyi(500, 1500, 9));
    assert_eq!(rmat(512, 2000, 9), rmat(512, 2000, 9));
    let a = UpdateStream::sliding_window(128, 8, 16, 3, 4, 11);
    let b = UpdateStream::sliding_window(128, 8, 16, 3, 4, 11);
    assert_eq!(a.batches, b.batches);
}

#[test]
fn connectivity_answers_are_run_invariant() {
    // Query answers, component counts and size distributions are
    // scheduling-independent (they depend only on the graph), even though
    // internal tie-breaking (which edge becomes a tree edge) may race.
    for algo in [DeletionAlgorithm::Simple, DeletionAlgorithm::Interleaved] {
        for seed in [3u64, 17, 99] {
            let a = observe(algo, seed);
            let b = observe(algo, seed);
            assert_eq!(a.0, b.0, "query answers, seed {seed}");
            assert_eq!(a.1, b.1, "component count, seed {seed}");
            assert_eq!(a.2, b.2, "size distribution, seed {seed}");
        }
    }
}

/// The observability layer's core promise: metrics are observational,
/// never inputs. A deterministic server with a metrics registry plugged
/// in must commit rounds **byte-identical** (ops and `BatchResult`s) to
/// one without, at 1, 2 and 4 worker threads — while the registry really
/// does observe the run.
#[test]
fn metrics_leave_deterministic_rounds_byte_identical() {
    const N: usize = 256;
    const CLIENTS: usize = 3;
    const ROUNDS: usize = 5;
    let schedules = zipf_client_schedules(N, CLIENTS, ROUNDS, 24, 0.4, 1.1, 99);
    let run = |threads: usize, registry: Option<dyncon_metrics::Registry>| -> Vec<RoundRecord> {
        let mut config = ServerConfig::new()
            .deterministic(true)
            .record_rounds(true)
            .worker_threads(threads)
            .queue_capacity(CLIENTS * ROUNDS);
        if let Some(r) = registry {
            config = config.metrics(r);
        }
        let server = ConnServer::start(BatchDynamicConnectivity::new(N), config);
        for round in 0..ROUNDS {
            for (c, sched) in schedules.iter().enumerate() {
                server.submit_as(c as u64, sched[round].clone()).unwrap();
            }
            assert_eq!(server.seal_round(), CLIENTS);
        }
        server.join().rounds
    };
    let baseline = run(1, None);
    for threads in [1usize, 2, 4] {
        let registry = dyncon_metrics::Registry::new();
        let observed = run(threads, Some(registry.clone()));
        assert_eq!(observed, baseline, "{threads} worker threads");
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("dyncon_server_rounds_committed_total")
                .and_then(|m| m.value.as_counter()),
            Some(ROUNDS as u64),
            "{threads} worker threads: registry observed every round"
        );
    }
}

/// The sharding layer's determinism claim: a deterministic
/// [`ShardedServer`](dyncon_shard::ShardedServer) commits rounds
/// **byte-identical** (ops and `BatchResult`s) at every shard count ×
/// worker thread count combination — and identical to a single
/// unsharded backend applying the same canonical rounds. The partition,
/// the decomposition, the per-shard sealed sub-rounds and the boundary
/// graph must all be invisible in the results.
#[test]
fn sharded_rounds_byte_identical_across_shard_and_thread_counts() {
    use dyncon_shard::{ShardConfig, ShardMapKind, ShardedServer};
    const N: usize = 96;
    const CLIENTS: usize = 3;
    const ROUNDS: usize = 5;
    let schedules = zipf_client_schedules(N, CLIENTS, ROUNDS, 24, 0.4, 1.1, 47);
    let run = |shards: usize, threads: usize, kind: ShardMapKind| -> Vec<RoundRecord> {
        let server: ShardedServer<BatchDynamicConnectivity> = ShardedServer::start(
            N,
            ShardConfig::new()
                .shards(shards)
                .kind(kind)
                .deterministic(true)
                .record_rounds(true)
                .shard_worker_threads(threads)
                .queue_capacity(CLIENTS * ROUNDS),
        )
        .unwrap();
        for round in 0..ROUNDS {
            for (c, sched) in schedules.iter().enumerate() {
                server.submit_as(c as u64, sched[round].clone()).unwrap();
            }
            assert_eq!(server.seal_round(), CLIENTS);
        }
        server.join().unwrap().rounds
    };
    // The unsharded reference: one backend applying the canonical
    // (client-major) round sequence.
    let mut reference_backend = BatchDynamicConnectivity::new(N);
    let reference: Vec<_> = (0..ROUNDS)
        .map(|r| {
            let ops: Vec<_> = schedules
                .iter()
                .flat_map(|client| client[r].iter().copied())
                .collect();
            let result = reference_backend.apply(&ops).unwrap();
            (r as u64, ops, result)
        })
        .collect();
    // Shard counts come from `DYNCON_SHARDS` (default 1,2,4) so the CI
    // matrix can pin a single count per job the same way it pins threads.
    for kind in [ShardMapKind::Range, ShardMapKind::Hash] {
        for shards in dyncon_bench::shard_counts() {
            for threads in [1usize, 2, 4] {
                let rounds = run(shards, threads, kind);
                let got: Vec<_> = rounds
                    .into_iter()
                    .map(|r| (r.round, r.ops, r.result))
                    .collect();
                assert_eq!(
                    got, reference,
                    "{kind:?} x {shards} shards x {threads} threads diverged"
                );
            }
        }
    }
}

/// Tracing extends the observational-only promise to the stage level: a
/// deterministic sharded server with a [`TraceRecorder`] attached — and
/// a live telemetry endpoint being scraped while rounds commit — must
/// produce rounds **byte-identical** to an untraced run at every worker
/// thread count × shard count, while the recorder really does capture
/// per-stage spans and the endpoint really serves them.
#[test]
fn tracing_and_telemetry_leave_deterministic_rounds_byte_identical() {
    use dyncon_shard::{ShardConfig, ShardedServer};
    use dyncon_trace::{serve_telemetry, TraceRecorder};
    use std::io::{Read, Write};
    const N: usize = 96;
    const CLIENTS: usize = 3;
    const ROUNDS: usize = 5;
    let schedules = zipf_client_schedules(N, CLIENTS, ROUNDS, 24, 0.4, 1.1, 47);
    let run = |shards: usize, threads: usize, trace: Option<TraceRecorder>| -> Vec<RoundRecord> {
        let mut config = ShardConfig::new()
            .shards(shards)
            .deterministic(true)
            .record_rounds(true)
            .shard_worker_threads(threads)
            .queue_capacity(CLIENTS * ROUNDS);
        if let Some(t) = trace {
            config = config.trace(t);
        }
        let server: ShardedServer<BatchDynamicConnectivity> =
            ShardedServer::start(N, config).unwrap();
        for round in 0..ROUNDS {
            for (c, sched) in schedules.iter().enumerate() {
                server.submit_as(c as u64, sched[round].clone()).unwrap();
            }
            assert_eq!(server.seal_round(), CLIENTS);
        }
        server.join().unwrap().rounds
    };
    let scrape = |addr: std::net::SocketAddr, path: &str| -> String {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        body
    };
    for shards in dyncon_bench::shard_counts() {
        let baseline = run(shards, 1, None);
        for threads in [1usize, 2, 4] {
            let recorder = TraceRecorder::new();
            let registry = dyncon_metrics::Registry::new();
            let telemetry = serve_telemetry("127.0.0.1:0", registry, recorder.clone()).unwrap();
            let addr = telemetry.local_addr();
            // A scraper hammers the endpoint while rounds commit, so any
            // exporter-vs-recorder interference would surface here.
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let scraper_stop = std::sync::Arc::clone(&stop);
            let scraper = std::thread::spawn(move || {
                let mut scrapes = 0u32;
                while !scraper_stop.load(std::sync::atomic::Ordering::Relaxed) {
                    scrape(addr, "/metrics");
                    scrape(addr, "/trace");
                    scrapes += 1;
                }
                scrapes
            });
            let traced = run(shards, threads, Some(recorder.clone()));
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            assert!(scraper.join().unwrap() > 0, "scraper never got through");
            assert_eq!(
                traced, baseline,
                "{shards} shards x {threads} threads diverged under tracing"
            );
            assert!(
                recorder.rounds_completed() >= ROUNDS as u64,
                "recorder saw every outer round"
            );
            let slowest = recorder.slowest_round().expect("a slowest round exists");
            assert!(slowest.wall_ns > 0 && !slowest.stages.is_empty());
            let trace_body = scrape(addr, "/trace");
            assert!(
                trace_body.contains("traceEvents"),
                "endpoint serves the ring"
            );
            telemetry.close();
        }
    }
}

/// The export layer's determinism claim: a deterministic sharded server
/// with a [`TelemetryExporter`](dyncon_export::TelemetryExporter)
/// attached — pushing metric deltas, spans and health state to a live
/// [`Collector`](dyncon_export::Collector) while rounds commit — must
/// produce rounds **byte-identical** to an unexported run at every
/// worker thread count × shard count. And because the exporter may
/// never sit on the commit path, killing the collector mid-run must
/// not stall, fail or reorder a single round.
#[test]
fn export_pipeline_leaves_deterministic_rounds_byte_identical() {
    use dyncon_export::{Collector, ExportConfig, HealthState, TelemetryExporter};
    use dyncon_shard::{ShardConfig, ShardedServer};
    use dyncon_trace::TraceRecorder;
    use std::time::{Duration, Instant};
    const N: usize = 96;
    const CLIENTS: usize = 3;
    const ROUNDS: usize = 5;
    let schedules = zipf_client_schedules(N, CLIENTS, ROUNDS, 24, 0.4, 1.1, 47);
    struct Observability {
        registry: dyncon_metrics::Registry,
        recorder: TraceRecorder,
        health: HealthState,
    }
    // `kill_collector_after`: shut the collector down after this many
    // sealed rounds, mid-run, and keep committing against a dead peer.
    let run = |shards: usize,
               threads: usize,
               obs: Option<&Observability>,
               kill_collector_after: Option<(usize, &Collector)>|
     -> Vec<RoundRecord> {
        let mut config = ShardConfig::new()
            .shards(shards)
            .deterministic(true)
            .record_rounds(true)
            .shard_worker_threads(threads)
            .queue_capacity(CLIENTS * ROUNDS);
        if let Some(obs) = obs {
            config = config
                .metrics(obs.registry.clone())
                .trace(obs.recorder.clone())
                .health(obs.health.clone());
        }
        let server: ShardedServer<BatchDynamicConnectivity> =
            ShardedServer::start(N, config).unwrap();
        for round in 0..ROUNDS {
            for (c, sched) in schedules.iter().enumerate() {
                server.submit_as(c as u64, sched[round].clone()).unwrap();
            }
            assert_eq!(server.seal_round(), CLIENTS);
            if let Some((after, collector)) = kill_collector_after {
                if round + 1 == after {
                    collector.shutdown();
                }
            }
        }
        server.join().unwrap().rounds
    };
    for shards in dyncon_bench::shard_counts() {
        let baseline = run(shards, 1, None, None);
        for threads in [1usize, 2, 4] {
            let obs = Observability {
                registry: dyncon_metrics::Registry::new(),
                recorder: TraceRecorder::new(),
                health: HealthState::default(),
            };
            let collector = Collector::bind("127.0.0.1:0").unwrap();
            let exporter = TelemetryExporter::start(
                collector.local_addr().to_string(),
                obs.registry.clone(),
                ExportConfig::new()
                    .interval(Duration::from_millis(2))
                    .trace(obs.recorder.clone())
                    .health(obs.health.clone())
                    .source("determinism-test"),
            );
            let exported = run(shards, threads, Some(&obs), None);
            assert_eq!(
                exported, baseline,
                "{shards} shards x {threads} threads diverged under export"
            );
            exporter.close();
            // The collector really received frames from the run — the
            // exporter was live, not a no-op — and the merged fleet
            // view accumulated the server's own counters.
            let rounds_seen = |c: &Collector| {
                c.merged_snapshot()
                    .get("dyncon_server_rounds_committed_total")
                    .and_then(|m| m.value.as_counter())
                    .unwrap_or(0)
            };
            let deadline = Instant::now() + Duration::from_secs(5);
            while rounds_seen(&collector) < ROUNDS as u64 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            assert!(
                collector.frames_received() > 0,
                "{shards} shards x {threads} threads: collector saw no frames"
            );
            assert_eq!(collector.checksum_failures(), 0);
            assert!(
                rounds_seen(&collector) >= ROUNDS as u64,
                "merged exposition carries the server's round counter"
            );
            collector.shutdown();

            // Kill the collector two rounds in: the remaining rounds
            // must still commit, byte-identically, with the exporter
            // reconnect-looping against a dead address.
            let obs = Observability {
                registry: dyncon_metrics::Registry::new(),
                recorder: TraceRecorder::new(),
                health: HealthState::default(),
            };
            let collector = Collector::bind("127.0.0.1:0").unwrap();
            let exporter = TelemetryExporter::start(
                collector.local_addr().to_string(),
                obs.registry.clone(),
                ExportConfig::new()
                    .interval(Duration::from_millis(2))
                    .trace(obs.recorder.clone())
                    .health(obs.health.clone()),
            );
            let survived = run(shards, threads, Some(&obs), Some((2, &collector)));
            assert_eq!(
                survived, baseline,
                "{shards} shards x {threads} threads diverged after collector death"
            );
            exporter.close();
            collector.shutdown();
        }
    }
}

#[test]
fn algorithms_agree_on_observables() {
    for seed in [5u64, 21] {
        let a = observe(DeletionAlgorithm::Simple, seed);
        let b = observe(DeletionAlgorithm::Interleaved, seed);
        assert_eq!(a.0, b.0, "queries agree across algorithms");
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }
}
