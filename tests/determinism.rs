//! Determinism guarantees: identical seeds and scripts must produce
//! identical observable behaviour across runs — the property every
//! "reproducible experiments" claim in EXPERIMENTS.md rests on.

use dyncon_core::{BatchDynamicConnectivity, Builder, DeletionAlgorithm};
use dyncon_graphgen::{erdos_renyi, rmat, UpdateStream};

fn observe(algo: DeletionAlgorithm, seed: u64) -> (Vec<bool>, usize, Vec<u64>, u64) {
    let n = 256;
    let edges = erdos_renyi(n, 3 * n, seed);
    let stream = UpdateStream::insert_then_delete(&edges, 64, 32, seed ^ 1);
    let mut g: BatchDynamicConnectivity = Builder::new(n).algorithm(algo).build().unwrap();
    for b in &stream.batches {
        match b {
            dyncon_graphgen::Batch::Insert(v) => {
                g.batch_insert(v);
            }
            dyncon_graphgen::Batch::Delete(v) => {
                g.batch_delete(v);
            }
            dyncon_graphgen::Batch::Query(v) => {
                g.batch_connected(v);
            }
        }
        // Observe midway too.
        if g.num_edges() == edges.len() / 2 {
            break;
        }
    }
    let queries = UpdateStream::random_queries(n, 128, seed ^ 2);
    let answers = g.batch_connected(&queries);
    (
        answers,
        g.num_components(),
        g.component_size_distribution(),
        g.stats().replacements,
    )
}

#[test]
fn workload_generators_are_deterministic() {
    assert_eq!(erdos_renyi(500, 1500, 9), erdos_renyi(500, 1500, 9));
    assert_eq!(rmat(512, 2000, 9), rmat(512, 2000, 9));
    let a = UpdateStream::sliding_window(128, 8, 16, 3, 4, 11);
    let b = UpdateStream::sliding_window(128, 8, 16, 3, 4, 11);
    assert_eq!(a.batches, b.batches);
}

#[test]
fn connectivity_answers_are_run_invariant() {
    // Query answers, component counts and size distributions are
    // scheduling-independent (they depend only on the graph), even though
    // internal tie-breaking (which edge becomes a tree edge) may race.
    for algo in [DeletionAlgorithm::Simple, DeletionAlgorithm::Interleaved] {
        for seed in [3u64, 17, 99] {
            let a = observe(algo, seed);
            let b = observe(algo, seed);
            assert_eq!(a.0, b.0, "query answers, seed {seed}");
            assert_eq!(a.1, b.1, "component count, seed {seed}");
            assert_eq!(a.2, b.2, "size distribution, seed {seed}");
        }
    }
}

#[test]
fn algorithms_agree_on_observables() {
    for seed in [5u64, 21] {
        let a = observe(DeletionAlgorithm::Simple, seed);
        let b = observe(DeletionAlgorithm::Interleaved, seed);
        assert_eq!(a.0, b.0, "queries agree across algorithms");
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }
}
