//! Failure injection and boundary conditions across the public API:
//! degenerate graphs, hostile batches, boundary vertex ids, level-edge
//! cases, and the typed-error contract of the `dyncon-api` boundary.
//! Every case also runs the full invariant checker.

use dyncon_api::{BatchDynamic, Builder, DeletionAlgorithm, DynConError, Op};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_durable::{recover, scratch_dir, DurableConfig, DurableServer, FsyncPolicy, WalWriter};
use dyncon_graphgen::{complete, path};
use dyncon_server::{ConnServer, ServerConfig};
use dyncon_spanning::IncrementalConnectivity;
use std::error::Error;

const ALGOS: [DeletionAlgorithm; 2] = [DeletionAlgorithm::Simple, DeletionAlgorithm::Interleaved];

fn build(n: usize, algo: DeletionAlgorithm) -> BatchDynamicConnectivity {
    Builder::new(n).algorithm(algo).build().unwrap()
}

#[test]
fn two_vertex_graph() {
    for algo in ALGOS {
        let mut g = build(2, algo);
        assert_eq!(g.num_levels(), 1);
        assert!(g.insert(0, 1));
        assert!(g.connected(0, 1));
        assert!(g.delete(0, 1));
        assert!(!g.connected(0, 1));
        // Re-insert after delete at the minimum level count.
        assert!(g.insert(1, 0));
        assert!(g.connected(0, 1));
        g.check_invariants().unwrap();
    }
}

#[test]
fn three_vertex_triangle_churn() {
    for algo in ALGOS {
        let mut g = build(3, algo);
        for _ in 0..10 {
            g.batch_insert(&[(0, 1), (1, 2), (2, 0)]);
            g.batch_delete(&[(0, 1)]);
            assert!(g.connected(0, 1));
            g.batch_delete(&[(1, 2), (2, 0)]);
            assert!(!g.connected(0, 1));
            g.check_invariants().unwrap();
        }
    }
}

#[test]
fn batch_with_internal_duplicates_and_loops() {
    let mut g = BatchDynamicConnectivity::new(8);
    let inserted = g.batch_insert(&[(1, 2), (2, 1), (1, 2), (3, 3), (4, 5)]);
    assert_eq!(inserted, 2);
    let deleted = g.batch_delete(&[(2, 1), (1, 2), (6, 7), (5, 5)]);
    assert_eq!(deleted, 1);
    assert_eq!(g.num_edges(), 1);
    g.check_invariants().unwrap();
}

#[test]
fn insert_existing_edge_is_noop() {
    let mut g = BatchDynamicConnectivity::new(4);
    g.insert(0, 1);
    assert_eq!(g.batch_insert(&[(0, 1), (1, 0)]), 0);
    assert_eq!(g.num_edges(), 1);
    g.check_invariants().unwrap();
}

#[test]
fn boundary_vertex_ids() {
    let n = 1000usize;
    let mut g = BatchDynamicConnectivity::new(n);
    let last = (n - 1) as u32;
    g.batch_insert(&[(0, last), (last - 1, last)]);
    assert!(g.connected(0, last - 1));
    g.batch_delete(&[(0, last)]);
    assert!(!g.connected(0, last));
    g.check_invariants().unwrap();
}

// ---- The typed-error contract of the API boundary ---------------------

#[test]
fn out_of_range_vertices_are_typed_errors() {
    let mut g = BatchDynamicConnectivity::new(4);
    // Every op kind is validated, including queries.
    for ops in [
        vec![Op::Insert(0, 4)],
        vec![Op::Delete(4, 0)],
        vec![Op::Query(2, u32::MAX)],
    ] {
        let err = g.apply(&ops).unwrap_err();
        match err {
            DynConError::VertexOutOfRange { num_vertices, .. } => assert_eq!(num_vertices, 4),
            other => panic!("expected VertexOutOfRange, got {other:?}"),
        }
    }
    // Trait-level batch mutations validate too.
    assert!(BatchDynamic::batch_insert(&mut g, &[(1, 9)]).is_err());
    assert!(BatchDynamic::batch_delete(&mut g, &[(9, 1)]).is_err());
    assert_eq!(g.num_edges(), 0);
}

#[test]
fn apply_rejects_wholesale_without_mutating() {
    let mut g = BatchDynamicConnectivity::new(4);
    g.insert(0, 1);
    // Valid prefix + invalid tail: the whole batch must be rejected and
    // the structure left exactly as it was.
    let err = g
        .apply(&[Op::Insert(1, 2), Op::Delete(0, 1), Op::Query(0, 4)])
        .unwrap_err();
    assert_eq!(
        err,
        DynConError::VertexOutOfRange {
            vertex: 4,
            num_vertices: 4
        }
    );
    assert_eq!(g.num_edges(), 1);
    assert!(g.has_edge(0, 1));
    assert!(!g.has_edge(1, 2));
    g.check_invariants().unwrap();
}

#[test]
#[should_panic(expected = "out of range")]
fn inherent_fast_path_still_panics() {
    // The unchecked inherent API keeps its documented panic contract;
    // the trait boundary is where validation lives.
    let mut g = BatchDynamicConnectivity::new(4);
    g.batch_insert(&[(0, 4)]);
}

#[test]
fn builder_rejects_unusable_vertex_counts() {
    match Builder::new(0).build::<BatchDynamicConnectivity>() {
        Err(e) => assert_eq!(e, DynConError::InvalidVertexCount { requested: 0 }),
        Ok(_) => panic!("0 vertices must be rejected"),
    }
    assert!(Builder::new(usize::MAX)
        .build::<BatchDynamicConnectivity>()
        .is_err());
}

#[test]
fn insert_only_backend_refuses_deletions() {
    let mut uf: IncrementalConnectivity = Builder::new(8).build().unwrap();
    uf.apply(&[Op::Insert(0, 1)]).unwrap();
    let err = uf.apply(&[Op::Delete(0, 1)]).unwrap_err();
    assert_eq!(
        err,
        DynConError::Unsupported {
            backend: "incremental-unionfind",
            operation: "batch_delete",
        }
    );
    // The error message owns up to partial application semantics.
    assert!(err.to_string().contains("does not support"));
}

// ---- The serving layer's failure contract ------------------------------

#[test]
fn full_queue_rejects_with_backpressure() {
    // Deterministic mode never commits without a seal, so the queue fills
    // deterministically: capacity 2, third submit must bounce.
    let server = ConnServer::start(
        BatchDynamicConnectivity::new(8),
        ServerConfig::new().deterministic(true).queue_capacity(2),
    );
    let t1 = server.submit_as(0, vec![Op::Insert(0, 1)]).unwrap();
    let t2 = server.submit_as(1, vec![Op::Insert(1, 2)]).unwrap();
    let err = server.submit_as(2, vec![Op::Query(0, 2)]).unwrap_err();
    assert_eq!(err, DynConError::Backpressure { capacity: 2 });
    // Display names the capacity; Error impl is wired up.
    assert!(
        err.to_string().contains("2") && err.to_string().contains("full"),
        "{err}"
    );
    assert!((&err as &dyn Error).source().is_none());
    // The rejected request was never enqueued: the round holds exactly
    // the two admitted requests, and draining reopens admission.
    server.seal_round();
    assert_eq!(t1.wait().unwrap().round, 0);
    assert_eq!(t2.wait().unwrap().round, 0);
    let t3 = server.submit_as(2, vec![Op::Query(0, 2)]).unwrap();
    server.seal_round();
    assert_eq!(t3.wait().unwrap().answers, vec![true]);
    let report = server.join();
    assert_eq!(report.ops_committed, 3, "the bounced request never ran");
}

#[test]
fn post_shutdown_submit_rejects_with_service_closed() {
    let server = ConnServer::start(BatchDynamicConnectivity::new(8), ServerConfig::new());
    let accepted = server
        .submit(vec![Op::Insert(0, 1), Op::Query(0, 1)])
        .unwrap();
    server.close();
    // Closed means closed, for every submission flavour.
    let err = server.submit(vec![Op::Query(0, 1)]).unwrap_err();
    assert_eq!(err, DynConError::ServiceClosed);
    assert_eq!(
        server.submit_blocking(vec![Op::Query(0, 1)]).unwrap_err(),
        DynConError::ServiceClosed
    );
    assert!(err.to_string().contains("closed"), "{err}");
    assert!((&err as &dyn Error).source().is_none());
    // close() is idempotent, and requests accepted before it still commit.
    server.close();
    assert_eq!(accepted.wait().unwrap().answers, vec![true]);
    let report = server.join();
    assert_eq!(report.ops_committed, 2);
    assert!(report.backend.connected(0, 1));
}

#[test]
fn server_admission_validates_vertices_like_apply() {
    // The serving layer keeps the trait boundary's validation contract:
    // a bad request is rejected at submit, before anything is enqueued.
    let server = ConnServer::start(BatchDynamicConnectivity::new(4), ServerConfig::new());
    let err = server
        .submit(vec![Op::Insert(0, 1), Op::Query(9, 0)])
        .unwrap_err();
    assert_eq!(
        err,
        DynConError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4
        }
    );
    let report = server.join();
    assert_eq!(report.rounds_committed, 0);
    assert_eq!(report.backend.num_edges(), 0);
}

// ---- The durable layer's failure contract ------------------------------

#[test]
fn unwritable_durable_dir_is_a_storage_error() {
    // A path whose parent is a regular FILE can never become a
    // directory: every write under it fails at the I/O layer. (Chmod
    // tricks don't work here — CI containers run as root, and root
    // ignores permission bits.)
    let blocker = scratch_dir("not-a-dir");
    std::fs::create_dir_all(blocker.parent().unwrap()).unwrap();
    std::fs::write(&blocker, b"I am a file, not a directory").unwrap();
    let dir = blocker.join("sub");

    let wal_err = match WalWriter::open(&dir, FsyncPolicy::EveryRound, 0) {
        Err(e) => e,
        Ok(_) => panic!("opening a WAL under a file must fail"),
    };
    match &wal_err {
        DynConError::Storage { path, message } => {
            assert!(!path.is_empty() && !message.is_empty());
        }
        other => panic!("expected Storage, got {other:?}"),
    }
    // Display and std::error wiring, like every variant.
    assert!(wal_err.to_string().contains("storage failure"), "{wal_err}");
    assert!((&wal_err as &dyn Error).source().is_none());

    // The served path reports the same typed error at open.
    match DurableServer::<BatchDynamicConnectivity>::open(
        &dir,
        8,
        ServerConfig::new(),
        DurableConfig::new(),
    ) {
        Err(DynConError::Storage { .. }) => {}
        Err(other) => panic!("expected Storage, got {other:?}"),
        Ok(_) => panic!("open under a file must fail"),
    }
    let _ = std::fs::remove_file(&blocker);
}

#[test]
fn recovering_from_garbage_is_corrupt_not_a_panic() {
    let dir = scratch_dir("garbage-state");
    std::fs::create_dir_all(&dir).unwrap();
    // A "snapshot" of pure noise: recovery must produce a typed
    // corruption error naming the file, never panic or fabricate state.
    std::fs::write(
        dir.join(dyncon_durable::SNAPSHOT_FILE),
        [0x5A; 137].as_slice(),
    )
    .unwrap();
    match recover::<BatchDynamicConnectivity>(&dir) {
        Err(e @ DynConError::Corrupt { .. }) => {
            assert!(e.to_string().contains("corrupt durable state"), "{e}");
            assert!((&e as &dyn Error).source().is_none());
        }
        Err(other) => panic!("expected Corrupt, got {other:?}"),
        Ok(_) => panic!("garbage must not recover"),
    }
    // Same for a valid snapshot next to a garbage WAL.
    let dir2 = scratch_dir("garbage-wal");
    std::fs::create_dir_all(&dir2).unwrap();
    {
        let (server, _) = DurableServer::<BatchDynamicConnectivity>::open(
            &dir2,
            8,
            ServerConfig::new(),
            DurableConfig::new(),
        )
        .unwrap();
        server.join().unwrap();
    }
    std::fs::write(dir2.join(dyncon_durable::WAL_FILE), b"totally not a wal").unwrap();
    match recover::<BatchDynamicConnectivity>(&dir2) {
        Err(DynConError::Corrupt { path, .. }) => {
            assert!(path.ends_with(dyncon_durable::WAL_FILE), "{path}")
        }
        Err(other) => panic!("expected Corrupt, got {other:?}"),
        Ok(_) => panic!("garbage WAL must not recover"),
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn empty_durable_dir_needs_no_tolerance() {
    // A directory that exists but holds nothing recovers as "nothing to
    // recover" (Storage), not as corruption — the two cases must stay
    // distinguishable for operators.
    let dir = scratch_dir("empty-dir");
    std::fs::create_dir_all(&dir).unwrap();
    match recover::<BatchDynamicConnectivity>(&dir) {
        Err(DynConError::Storage { message, .. }) => {
            assert!(message.contains("no snapshot"), "{message}")
        }
        Err(other) => panic!("expected Storage, got {other:?}"),
        Ok(_) => panic!("an empty dir has nothing to recover"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- Level-edge and churn cases ---------------------------------------

#[test]
fn interleaved_delete_and_reinsert_same_batch_boundary() {
    // Delete a bridge and re-insert it in the very next batch, repeatedly;
    // exercises record slot reuse and level reset to top.
    for algo in ALGOS {
        let mut g = build(32, algo);
        g.batch_insert(&path(32));
        for _ in 0..8 {
            g.batch_delete(&[(15, 16)]);
            assert!(!g.connected(0, 31));
            g.batch_insert(&[(15, 16)]);
            assert!(g.connected(0, 31));
        }
        g.check_invariants().unwrap();
    }
}

#[test]
fn delete_and_reinsert_within_one_mixed_batch() {
    // The same bridge cycle as above, but as ONE mixed-op batch: the
    // run-splitting of `apply` must preserve operation order.
    for algo in ALGOS {
        let mut g = build(32, algo);
        g.batch_insert(&path(32));
        let res = g
            .apply(&[
                Op::Query(0, 31),
                Op::Delete(15, 16),
                Op::Query(0, 31),
                Op::Insert(15, 16),
                Op::Query(0, 31),
            ])
            .unwrap();
        assert_eq!(res.answers, vec![true, false, true], "{algo:?}");
        assert_eq!((res.inserted, res.deleted), (1, 1));
        g.check_invariants().unwrap();
    }
}

#[test]
fn deep_level_descent() {
    // A clique forces edges to sink through many levels as it is chewed
    // away edge by edge — the worst case for level bookkeeping.
    for algo in ALGOS {
        let n = 16;
        let mut g = build(n, algo);
        let edges = complete(n);
        g.batch_insert(&edges);
        for e in &edges {
            g.batch_delete(&[*e]);
        }
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_components(), n);
        g.check_invariants().unwrap();
        // Levels must have been exercised below the top.
        assert!(
            g.stats().nontree_pushes > 0,
            "{algo:?} never pushed an edge"
        );
    }
}

#[test]
fn alternating_algorithms_on_same_graph_agree() {
    // Same script, both algorithms, equal observable behaviour.
    let script_ins: Vec<(u32, u32)> = complete(12);
    let mut results = Vec::new();
    for algo in ALGOS {
        let mut g = build(12, algo);
        g.batch_insert(&script_ins);
        g.batch_delete(&script_ins[0..30]);
        let mut obs = Vec::new();
        for u in 0..12u32 {
            for v in u + 1..12 {
                obs.push(g.connected(u, v));
            }
        }
        obs.push(g.num_components() == 1);
        results.push(obs);
    }
    assert_eq!(results[0], results[1]);
}

#[test]
fn massive_single_batch_teardown() {
    // Delete every edge of a moderately large graph in ONE batch.
    for algo in ALGOS {
        let n = 512;
        let edges = dyncon_graphgen::erdos_renyi(n, 3 * n, 77);
        let mut g = build(n, algo);
        g.batch_insert(&edges);
        g.batch_delete(&edges);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_components(), n);
        g.check_invariants().unwrap();
    }
}

#[test]
fn queries_do_not_mutate() {
    let mut g = BatchDynamicConnectivity::new(16);
    g.batch_insert(&path(16));
    let before = g.stats();
    // Queries only need a shared reference now.
    let shared = &g;
    for _ in 0..5 {
        shared.batch_connected(&[(0, 15), (3, 9)]);
    }
    assert_eq!(g.num_edges(), 15);
    assert_eq!(g.stats().edges_inserted, before.edges_inserted);
    assert_eq!(g.stats().queries, before.queries + 10);
    g.check_invariants().unwrap();
}

#[test]
fn disabled_stats_stay_zero() {
    let mut g: BatchDynamicConnectivity = Builder::new(16).stats(false).build().unwrap();
    g.batch_insert(&path(16));
    g.batch_delete(&[(3, 4)]);
    g.batch_connected(&[(0, 15)]);
    let s = g.stats();
    assert_eq!(
        (s.edges_inserted, s.edges_deleted, s.queries, s.rounds),
        (0, 0, 0, 0)
    );
    g.check_invariants().unwrap();
}

// ---------------------------------------------------------------------------
// Telemetry exporter failure paths: the push pipeline's contract is that
// collector trouble is *invisible* to the process being observed — the
// exporter buffers (bounded), drops (counted), reconnects (backed off),
// and never returns an error or blocks anything.
// ---------------------------------------------------------------------------

#[test]
fn exporter_with_collector_down_at_startup_never_errors() {
    use dyncon_export::{ExportConfig, HealthState, TelemetryExporter};
    use std::time::Duration;
    // A port that was just bound and released: nothing listens there,
    // every connect is refused.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let registry = dyncon_metrics::Registry::new();
    let health = HealthState::default();
    let exporter = TelemetryExporter::start(
        dead_addr,
        registry.clone(),
        ExportConfig::new()
            .interval(Duration::from_millis(2))
            .max_backoff(Duration::from_millis(20))
            .health(health.clone()),
    );
    // The observed server runs a full deterministic workload while the
    // exporter fails to connect in the background.
    let server = ConnServer::start(
        BatchDynamicConnectivity::new(32),
        ServerConfig::new()
            .deterministic(true)
            .metrics(registry.clone())
            .health(health),
    );
    for round in 0..5u32 {
        server
            .submit_as(
                0,
                vec![Op::Insert(round, round + 1), Op::Query(0, round + 1)],
            )
            .unwrap();
        server.seal_round();
    }
    let report = server.join();
    assert_eq!(report.rounds_committed, 5, "every round committed");
    assert_eq!(exporter.frames_sent(), 0, "nothing was deliverable");
    exporter.close();
    // Undeliverable frames are dropped *visibly*, not silently.
    let dropped = registry
        .snapshot()
        .get("dyncon_export_frames_dropped_total")
        .and_then(|m| m.value.as_counter())
        .unwrap_or(0);
    assert!(dropped > 0, "close() counts the undelivered buffer dropped");
}

#[test]
fn exporter_reconnects_after_mid_run_disconnect() {
    use dyncon_export::frame::EXPORT_MAGIC;
    use dyncon_export::{ExportConfig, TelemetryExporter};
    use std::io::Read;
    use std::time::{Duration, Instant};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let registry = dyncon_metrics::Registry::new();
    let exporter = TelemetryExporter::start(
        addr,
        registry.clone(),
        ExportConfig::new()
            .interval(Duration::from_millis(2))
            .io_timeout(Duration::from_millis(100))
            .max_backoff(Duration::from_millis(20)),
    );
    let read_magic = |stream: &mut std::net::TcpStream| {
        let mut magic = [0u8; 8];
        stream.read_exact(&mut magic).unwrap();
        assert_eq!(magic, EXPORT_MAGIC, "stream re-frames from the magic");
    };
    // First connection: verify the stream magic, then hang up mid-run.
    let (mut conn1, _) = listener.accept().unwrap();
    read_magic(&mut conn1);
    drop(conn1);
    // The exporter must notice the dead socket on a failed write and
    // come back — the second accept only returns if it reconnects.
    let (mut conn2, _) = listener.accept().unwrap();
    read_magic(&mut conn2);
    let deadline = Instant::now() + Duration::from_secs(5);
    while exporter.reconnects() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(exporter.reconnects() >= 1, "reconnect was counted");
    // Frames flow again on the new connection.
    let sent_after_reconnect = exporter.frames_sent();
    let deadline = Instant::now() + Duration::from_secs(5);
    while exporter.frames_sent() <= sent_after_reconnect && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        exporter.frames_sent() > sent_after_reconnect,
        "frames keep flowing after the reconnect"
    );
    exporter.close();
}

#[test]
fn slow_collector_drops_are_bounded_and_counted_without_blocking() {
    use dyncon_export::{ExportConfig, TelemetryExporter};
    use std::time::Duration;
    // The limiting case of a slow collector: one that never completes
    // the connection at all. Every tick still frames a metrics delta,
    // so the bounded buffer (2 frames here) must evict and count.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let registry = dyncon_metrics::Registry::new();
    let ticker = registry.counter("dyncon_test_ticker", "ops", "test traffic");
    let exporter = TelemetryExporter::start(
        dead_addr,
        registry.clone(),
        ExportConfig::new()
            .interval(Duration::from_millis(1))
            .buffer_frames(2)
            .max_backoff(Duration::from_millis(10)),
    );
    // The producing side keeps recording at full speed throughout.
    for _ in 0..200 {
        ticker.inc();
        std::thread::sleep(Duration::from_millis(1));
    }
    let dropped = exporter.frames_dropped();
    assert!(
        dropped >= 10,
        "buffer of 2 under ~200 ticks must evict plenty, got {dropped}"
    );
    assert_eq!(exporter.frames_sent(), 0);
    exporter.close();
}

#[test]
fn close_flushes_everything_recorded_before_it() {
    use dyncon_export::{Collector, ExportConfig, TelemetryExporter};
    use std::time::{Duration, Instant};
    let collector = Collector::bind("127.0.0.1:0").unwrap();
    let registry = dyncon_metrics::Registry::new();
    let counter = registry.counter("dyncon_test_commits", "ops", "test counter");
    // An interval far longer than the test: nothing is pushed until
    // close(), so delivery proves the final drain+flush ordering.
    let exporter = TelemetryExporter::start(
        collector.local_addr().to_string(),
        registry.clone(),
        ExportConfig::new()
            .interval(Duration::from_secs(60))
            .source("flush-test"),
    );
    counter.add(41);
    exporter.close();
    let deadline = Instant::now() + Duration::from_secs(5);
    let observed = loop {
        let v = collector
            .merged_snapshot()
            .get("dyncon_test_commits")
            .and_then(|m| m.value.as_counter());
        if v == Some(41) || Instant::now() > deadline {
            break v;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(
        observed,
        Some(41),
        "the pre-close counter value arrived via the final flush"
    );
    assert_eq!(collector.checksum_failures(), 0);
    assert_eq!(collector.sources(), vec!["flush-test".to_string()]);
    collector.close();
}
