//! Failure injection and boundary conditions across the public API:
//! degenerate graphs, hostile batches, boundary vertex ids, level-edge
//! cases. Every case also runs the full invariant checker.

use dyncon_core::{BatchDynamicConnectivity, DeletionAlgorithm};
use dyncon_graphgen::{complete, path};

const ALGOS: [DeletionAlgorithm; 2] = [DeletionAlgorithm::Simple, DeletionAlgorithm::Interleaved];

#[test]
fn two_vertex_graph() {
    for algo in ALGOS {
        let mut g = BatchDynamicConnectivity::with_algorithm(2, algo);
        assert_eq!(g.num_levels(), 1);
        assert!(g.insert(0, 1));
        assert!(g.connected(0, 1));
        assert!(g.delete(0, 1));
        assert!(!g.connected(0, 1));
        // Re-insert after delete at the minimum level count.
        assert!(g.insert(1, 0));
        assert!(g.connected(0, 1));
        g.check_invariants().unwrap();
    }
}

#[test]
fn three_vertex_triangle_churn() {
    for algo in ALGOS {
        let mut g = BatchDynamicConnectivity::with_algorithm(3, algo);
        for _ in 0..10 {
            g.batch_insert(&[(0, 1), (1, 2), (2, 0)]);
            g.batch_delete(&[(0, 1)]);
            assert!(g.connected(0, 1));
            g.batch_delete(&[(1, 2), (2, 0)]);
            assert!(!g.connected(0, 1));
            g.check_invariants().unwrap();
        }
    }
}

#[test]
fn batch_with_internal_duplicates_and_loops() {
    let mut g = BatchDynamicConnectivity::new(8);
    let inserted = g.batch_insert(&[(1, 2), (2, 1), (1, 2), (3, 3), (4, 5)]);
    assert_eq!(inserted, 2);
    let deleted = g.batch_delete(&[(2, 1), (1, 2), (6, 7), (5, 5)]);
    assert_eq!(deleted, 1);
    assert_eq!(g.num_edges(), 1);
    g.check_invariants().unwrap();
}

#[test]
fn insert_existing_edge_is_noop() {
    let mut g = BatchDynamicConnectivity::new(4);
    g.insert(0, 1);
    assert_eq!(g.batch_insert(&[(0, 1), (1, 0)]), 0);
    assert_eq!(g.num_edges(), 1);
    g.check_invariants().unwrap();
}

#[test]
fn boundary_vertex_ids() {
    let n = 1000usize;
    let mut g = BatchDynamicConnectivity::new(n);
    let last = (n - 1) as u32;
    g.batch_insert(&[(0, last), (last - 1, last)]);
    assert!(g.connected(0, last - 1));
    g.batch_delete(&[(0, last)]);
    assert!(!g.connected(0, last));
    g.check_invariants().unwrap();
}

#[test]
#[should_panic(expected = "out of range")]
fn out_of_range_vertex_panics() {
    let mut g = BatchDynamicConnectivity::new(4);
    g.batch_insert(&[(0, 4)]);
}

#[test]
fn interleaved_delete_and_reinsert_same_batch_boundary() {
    // Delete a bridge and re-insert it in the very next batch, repeatedly;
    // exercises record slot reuse and level reset to top.
    for algo in ALGOS {
        let mut g = BatchDynamicConnectivity::with_algorithm(32, algo);
        g.batch_insert(&path(32));
        for _ in 0..8 {
            g.batch_delete(&[(15, 16)]);
            assert!(!g.connected(0, 31));
            g.batch_insert(&[(15, 16)]);
            assert!(g.connected(0, 31));
        }
        g.check_invariants().unwrap();
    }
}

#[test]
fn deep_level_descent() {
    // A clique forces edges to sink through many levels as it is chewed
    // away edge by edge — the worst case for level bookkeeping.
    for algo in ALGOS {
        let n = 16;
        let mut g = BatchDynamicConnectivity::with_algorithm(n, algo);
        let edges = complete(n);
        g.batch_insert(&edges);
        for e in &edges {
            g.batch_delete(&[*e]);
        }
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_components(), n);
        g.check_invariants().unwrap();
        // Levels must have been exercised below the top.
        assert!(
            g.stats().nontree_pushes > 0,
            "{algo:?} never pushed an edge"
        );
    }
}

#[test]
fn alternating_algorithms_on_same_graph_agree() {
    // Same script, both algorithms, equal observable behaviour.
    let script_ins: Vec<(u32, u32)> = complete(12);
    let mut results = Vec::new();
    for algo in ALGOS {
        let mut g = BatchDynamicConnectivity::with_algorithm(12, algo);
        g.batch_insert(&script_ins);
        g.batch_delete(&script_ins[0..30]);
        let mut obs = Vec::new();
        for u in 0..12u32 {
            for v in u + 1..12 {
                obs.push(g.connected(u, v));
            }
        }
        obs.push(g.num_components() == 1);
        results.push(obs);
    }
    assert_eq!(results[0], results[1]);
}

#[test]
fn massive_single_batch_teardown() {
    // Delete every edge of a moderately large graph in ONE batch.
    for algo in ALGOS {
        let n = 512;
        let edges = dyncon_graphgen::erdos_renyi(n, 3 * n, 77);
        let mut g = BatchDynamicConnectivity::with_algorithm(n, algo);
        g.batch_insert(&edges);
        g.batch_delete(&edges);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_components(), n);
        g.check_invariants().unwrap();
    }
}

#[test]
fn queries_do_not_mutate() {
    let mut g = BatchDynamicConnectivity::new(16);
    g.batch_insert(&path(16));
    let before = g.stats().clone();
    for _ in 0..5 {
        g.batch_connected(&[(0, 15), (3, 9)]);
    }
    assert_eq!(g.num_edges(), 15);
    assert_eq!(g.stats().edges_inserted, before.edges_inserted);
    assert_eq!(g.stats().queries, before.queries + 10);
    g.check_invariants().unwrap();
}
