//! Property-based tests (proptest) over the whole stack: arbitrary
//! operation sequences shrink to minimal counterexamples on failure.

use dyncon_core::{BatchDynamicConnectivity, Builder, DeletionAlgorithm};
use dyncon_hdt::HdtConnectivity;
use dyncon_spanning::NaiveDynamicGraph;
use proptest::prelude::*;

/// One scripted operation over a small vertex universe.
#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<(u32, u32)>),
    Delete(Vec<(u32, u32)>),
    Query(u32, u32),
}

const N: u32 = 12;

fn edge_strategy() -> impl Strategy<Value = (u32, u32)> {
    (0..N, 0..N)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(edge_strategy(), 1..8).prop_map(Op::Insert),
        prop::collection::vec(edge_strategy(), 1..8).prop_map(Op::Delete),
        edge_strategy().prop_map(|(u, v)| Op::Query(u, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The batch structure (both algorithms) matches the oracle on any
    /// operation sequence, and its invariants hold throughout.
    #[test]
    fn core_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut simple: BatchDynamicConnectivity = Builder::new(N as usize)
            .algorithm(DeletionAlgorithm::Simple)
            .build()
            .unwrap();
        let mut inter: BatchDynamicConnectivity = Builder::new(N as usize)
            .algorithm(DeletionAlgorithm::Interleaved)
            .build()
            .unwrap();
        let mut oracle = NaiveDynamicGraph::new(N as usize);
        for op in &ops {
            match op {
                Op::Insert(es) => {
                    simple.batch_insert(es);
                    inter.batch_insert(es);
                    oracle.batch_insert(es);
                }
                Op::Delete(es) => {
                    // Delete only present edges to keep counts comparable
                    // (absent deletions are separately unit-tested).
                    let present: Vec<(u32, u32)> =
                        es.iter().copied().filter(|&(u, v)| oracle.has_edge(u, v)).collect();
                    simple.batch_delete(&present);
                    inter.batch_delete(&present);
                    oracle.batch_delete(&present);
                }
                Op::Query(u, v) => {
                    let expect = oracle.connected(*u, *v);
                    prop_assert_eq!(simple.connected(*u, *v), expect);
                    prop_assert_eq!(inter.connected(*u, *v), expect);
                }
            }
            prop_assert_eq!(simple.num_edges(), oracle.num_edges());
            prop_assert_eq!(inter.num_edges(), oracle.num_edges());
        }
        simple.check_invariants().map_err(TestCaseError::fail)?;
        inter.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// The sequential HDT baseline matches the oracle on any sequence.
    #[test]
    fn hdt_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut hdt = HdtConnectivity::new(N as usize);
        let mut oracle = NaiveDynamicGraph::new(N as usize);
        for op in &ops {
            match op {
                Op::Insert(es) => {
                    for &(u, v) in es {
                        prop_assert_eq!(hdt.insert(u, v), oracle.insert(u, v));
                    }
                }
                Op::Delete(es) => {
                    for &(u, v) in es {
                        prop_assert_eq!(hdt.delete(u, v), oracle.delete(u, v));
                    }
                }
                Op::Query(u, v) => {
                    prop_assert_eq!(hdt.connected(*u, *v), oracle.connected(*u, *v));
                }
            }
        }
        prop_assert_eq!(hdt.num_components(), oracle.num_components());
    }

    /// Component sizes agree with the oracle after arbitrary batches.
    #[test]
    fn component_sizes_match(
        ins in prop::collection::vec(edge_strategy(), 0..30),
        del_mask in prop::collection::vec(any::<bool>(), 30),
    ) {
        let mut g = BatchDynamicConnectivity::new(N as usize);
        let mut oracle = NaiveDynamicGraph::new(N as usize);
        g.batch_insert(&ins);
        oracle.batch_insert(&ins);
        let dels: Vec<(u32, u32)> = ins
            .iter()
            .zip(&del_mask)
            .filter_map(|(&e, &d)| d.then_some(e))
            .collect();
        g.batch_delete(&dels);
        oracle.batch_delete(&dels);
        for v in 0..N {
            prop_assert_eq!(g.component_size(v), oracle.component_size(v) as u64);
        }
    }
}
