//! Crash-recovery determinism: the durable serving layer must make
//! process death invisible. A seeded concurrent workload is killed at
//! arbitrary sealed-round boundaries (offsets from
//! `dyncon_graphgen::crash_points`); recovery plus replay of the
//! remaining traffic must produce `BatchResult`s — and, for pure-WAL
//! recovery, even the opaque `component_labels()` — byte-identical to
//! the run that never crashed, at 1/2/4 worker threads. Torn and
//! bit-flipped logs recover cleanly (typed errors, never a panic), and
//! snapshot + compaction round-trips preserve the observable graph.

use dyncon_api::{BatchDynamic, BatchResult, ExportEdges, Op};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_durable::{
    read_wal, recover, scratch_dir, DurableConfig, DurableServer, DynConError, FsyncPolicy,
    WAL_FILE,
};
use dyncon_graphgen::{crash_points, zipf_client_schedules};
use dyncon_server::ServerConfig;
use dyncon_spanning::NaiveDynamicGraph;
use std::path::{Path, PathBuf};
use std::sync::Barrier;

const N: usize = 128;
const CLIENTS: usize = 3;
const ROUNDS: usize = 8;
const OPS_PER_REQUEST: usize = 16;

fn schedules() -> Vec<Vec<Vec<Op>>> {
    zipf_client_schedules(N, CLIENTS, ROUNDS, OPS_PER_REQUEST, 0.4, 1.1, 20_26)
}

/// The canonical op sequence of each round (client-major, the
/// deterministic mode contract).
fn canonical_rounds() -> Vec<Vec<Op>> {
    let scheds = schedules();
    (0..ROUNDS)
        .map(|r| {
            scheds
                .iter()
                .flat_map(|client| client[r].iter().copied())
                .collect()
        })
        .collect()
}

/// The uninterrupted run: every round applied in order on one backend.
fn uninterrupted() -> (BatchDynamicConnectivity, Vec<BatchResult>) {
    let mut g = BatchDynamicConnectivity::new(N);
    let results = canonical_rounds()
        .iter()
        .map(|ops| g.apply(ops).unwrap())
        .collect();
    (g, results)
}

/// Serve rounds `0..upto` of the schedules through a `DurableServer`
/// with truly concurrent clients, then shut down *without* compaction —
/// the WAL is left exactly as a crash at that sealed-round boundary
/// would leave it (modulo the torn tail some tests add by hand).
fn serve_rounds(dir: &Path, upto: usize, worker_threads: usize) {
    let scheds = schedules();
    let (server, _meta) = DurableServer::<BatchDynamicConnectivity>::open(
        dir,
        N,
        ServerConfig::new()
            .deterministic(true)
            .worker_threads(worker_threads)
            .queue_capacity(CLIENTS * ROUNDS),
        DurableConfig::new().compact_on_join(false),
    )
    .unwrap();
    let submitted = Barrier::new(CLIENTS + 1);
    let committed = Barrier::new(CLIENTS + 1);
    std::thread::scope(|scope| {
        for (c, sched) in scheds.iter().enumerate() {
            let (server, submitted, committed) = (&server, &submitted, &committed);
            scope.spawn(move || {
                for ops in &sched[..upto] {
                    let ticket = server.submit_as(c as u64, ops.clone()).unwrap();
                    submitted.wait();
                    ticket.wait().unwrap();
                    committed.wait();
                }
            });
        }
        for _ in 0..upto {
            submitted.wait();
            assert_eq!(server.seal_round(), CLIENTS);
            committed.wait();
        }
    });
    let report = server.join().unwrap();
    assert_eq!(report.service.rounds_committed, upto as u64);
    assert_eq!(report.next_round, upto as u64);
    assert!(!report.compacted);
}

fn cleanup(dir: &PathBuf) {
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn kill_at_round_k_recovery_is_byte_identical_across_worker_threads() {
    let rounds = canonical_rounds();
    let (reference, expected) = uninterrupted();
    let expected_labels = reference.component_labels();
    for worker_threads in [1usize, 2, 4] {
        for &k in &crash_points(ROUNDS, 2, 7 + worker_threads as u64) {
            let dir = scratch_dir(&format!("kill-w{worker_threads}-k{k}"));
            serve_rounds(&dir, k, worker_threads);

            // The dead process's log holds exactly the sealed rounds.
            let (mut recovered, meta) = recover::<BatchDynamicConnectivity>(&dir).unwrap();
            assert_eq!(meta.replayed_rounds, k as u64, "w={worker_threads} k={k}");
            assert!(!meta.dropped_tail);

            // Replaying the remaining traffic yields byte-identical
            // results…
            let tail_results: Vec<BatchResult> = rounds[k..]
                .iter()
                .map(|ops| recovered.apply(ops).unwrap())
                .collect();
            assert_eq!(tail_results, expected[k..], "w={worker_threads} k={k}");
            // …and the final structure is indistinguishable from the
            // uninterrupted one, down to the opaque internal labels.
            assert_eq!(
                recovered.component_labels(),
                expected_labels,
                "w={worker_threads} k={k}"
            );
            assert_eq!(recovered.export_edges(), reference.export_edges());
            recovered.check().unwrap();
            cleanup(&dir);
        }
    }
}

/// Sharded kill-at-round-k: a durable [`ShardedServer`] writes one WAL
/// per shard (plus the cross store's). Killing it at a sealed-round
/// boundary and reopening the same base directory must recover *every*
/// shard and the lazily rebuilt boundary graph to the same prefix, so
/// replaying the remaining rounds yields `BatchResult`s — and a final
/// edge set and component count — byte-identical to the uninterrupted
/// run, at 1, 2 and 4 worker threads per shard.
#[test]
fn sharded_kill_at_round_k_recovers_every_shard_and_the_boundary() {
    use dyncon_api::Connectivity;
    use dyncon_shard::{DurableShards, ShardConfig, ShardMapKind, ShardedServer};
    const SHARDS: usize = 3;
    let rounds = canonical_rounds();
    let (reference, expected) = uninterrupted();

    // Serve `rounds[from..upto]` through a durable sharded service on
    // `dir`, then stop without compaction — every shard's WAL is left
    // exactly as a kill at that sealed-round boundary would leave it.
    let serve = |dir: &Path, from: usize, upto: usize, threads: usize| -> Vec<BatchResult> {
        let server: ShardedServer<BatchDynamicConnectivity> = ShardedServer::start(
            N,
            ShardConfig::new()
                .shards(SHARDS)
                .kind(ShardMapKind::Hash)
                .deterministic(true)
                .shard_worker_threads(threads)
                .queue_capacity(ROUNDS)
                .durable(DurableShards::new(dir).compact_on_join(false)),
        )
        .unwrap();
        let mut results = Vec::new();
        for ops in &rounds[from..upto] {
            let ticket = server.submit_as(0, ops.clone()).unwrap();
            assert_eq!(server.seal_round(), 1);
            let r = ticket.wait().unwrap();
            results.push(BatchResult {
                inserted: r.inserted,
                deleted: r.deleted,
                answers: r.answers,
            });
        }
        let report = server.join().unwrap();
        for shard in &report.shards {
            // Shard WALs number *sub-rounds* (one per mutation segment
            // that touched the shard), which resume where they left off.
            assert!(shard.next_round.is_some(), "shard ran durable");
        }
        results
    };

    for worker_threads in [1usize, 2, 4] {
        for &k in &crash_points(ROUNDS, 2, 31 + worker_threads as u64) {
            let dir = scratch_dir(&format!("shard-kill-w{worker_threads}-k{k}"));
            let head = serve(&dir, 0, k, worker_threads);
            assert_eq!(head, expected[..k], "w={worker_threads} k={k}: head");

            // Reopen: every shard (and the cross store) recovers from
            // its own WAL; the tail replays byte-identically.
            let tail = serve(&dir, k, ROUNDS, worker_threads);
            assert_eq!(tail, expected[k..], "w={worker_threads} k={k}: tail");

            // The recovered ensemble's final structure matches the
            // never-crashed single backend: same edge set (per-shard
            // exports recombined), same global component count (through
            // the rebuilt boundary graph).
            let server: ShardedServer<BatchDynamicConnectivity> = ShardedServer::start(
                N,
                ShardConfig::new()
                    .shards(SHARDS)
                    .kind(ShardMapKind::Hash)
                    .durable(DurableShards::new(&dir)),
            )
            .unwrap();
            let (edges, comps) = server
                .inspect(|b| (b.export_edges(), b.num_components()))
                .unwrap();
            assert_eq!(edges, reference.export_edges(), "w={worker_threads} k={k}");
            assert_eq!(
                comps,
                BatchDynamicConnectivity::num_components(&reference),
                "w={worker_threads} k={k}"
            );
            server.join().unwrap();
            cleanup(&dir);
        }
    }
}

/// The shard topology is durable state: reopening a base directory with
/// a different partition must fail with a typed `Corrupt` error instead
/// of scattering recovered edges across the wrong shards.
#[test]
fn sharded_reopen_with_different_topology_is_rejected() {
    use dyncon_shard::{DurableShards, ShardConfig, ShardMapKind, ShardedServer};
    let dir = scratch_dir("shard-topology");
    let open = |shards: usize, kind: ShardMapKind| {
        ShardedServer::<BatchDynamicConnectivity>::start(
            N,
            ShardConfig::new()
                .shards(shards)
                .kind(kind)
                .durable(DurableShards::new(&dir)),
        )
    };
    open(2, ShardMapKind::Hash).unwrap().join().unwrap();
    // Same topology reopens fine…
    open(2, ShardMapKind::Hash).unwrap().join().unwrap();
    // …different shard count or kind does not.
    for (shards, kind) in [(3, ShardMapKind::Hash), (2, ShardMapKind::Range)] {
        match open(shards, kind) {
            Err(DynConError::Corrupt { path, detail, .. }) => {
                assert!(path.ends_with("shard.manifest"), "{path}");
                assert!(detail.contains("topology"), "{detail}");
            }
            Err(other) => panic!("expected Corrupt, got {other:?}"),
            Ok(_) => panic!("topology mismatch must not open"),
        }
    }
    cleanup(&dir);
}

#[test]
fn recovery_agrees_with_the_naive_oracle() {
    let rounds = canonical_rounds();
    let (_, expected) = uninterrupted();
    for &k in &crash_points(ROUNDS, 3, 99) {
        let dir = scratch_dir(&format!("oracle-k{k}"));
        serve_rounds(&dir, k, 2);
        // Recover the slow-but-trusted backend from the same directory:
        // recovery is backend-generic, and the oracle's answers for the
        // remaining traffic must match the fast structure's.
        let (mut oracle, meta) = recover::<NaiveDynamicGraph>(&dir).unwrap();
        assert_eq!(meta.replayed_rounds, k as u64);
        for (r, ops) in rounds[k..].iter().enumerate() {
            let got = oracle.apply(ops).unwrap();
            assert_eq!(got, expected[k + r], "oracle diverged at round {}", k + r);
        }
        cleanup(&dir);
    }
}

#[test]
fn truncated_tail_loses_exactly_the_torn_round() {
    let rounds = canonical_rounds();
    let (_, expected) = uninterrupted();
    let k = 5;
    let dir = scratch_dir("torn-tail");
    serve_rounds(&dir, k, 2);
    // Tear the final append: chop a few bytes off the log.
    let wal_path = dir.join(WAL_FILE);
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 9]).unwrap();

    let (mut recovered, meta) = recover::<BatchDynamicConnectivity>(&dir).unwrap();
    assert!(meta.dropped_tail, "the torn record must be reported");
    assert_eq!(
        meta.replayed_rounds,
        (k - 1) as u64,
        "only the tail is lost"
    );
    // The recovered structure is the k-1 state: replaying from round
    // k-1 onwards reproduces the uninterrupted results.
    let tail_results: Vec<BatchResult> = rounds[k - 1..]
        .iter()
        .map(|ops| recovered.apply(ops).unwrap())
        .collect();
    assert_eq!(tail_results, expected[k - 1..]);
    cleanup(&dir);
}

#[test]
fn garbage_after_the_last_record_is_dropped() {
    let k = 3;
    let dir = scratch_dir("garbage-tail");
    serve_rounds(&dir, k, 1);
    let wal_path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes.extend_from_slice(&[0xAB; 13]); // a torn header
    std::fs::write(&wal_path, &bytes).unwrap();
    let (recovered, meta) = recover::<BatchDynamicConnectivity>(&dir).unwrap();
    assert!(meta.dropped_tail);
    assert_eq!(meta.replayed_rounds, k as u64, "no valid round lost");
    recovered.check().unwrap();
    cleanup(&dir);
}

#[test]
fn bit_flipped_checksum_mid_log_is_a_typed_error_not_a_panic() {
    let dir = scratch_dir("bitflip");
    serve_rounds(&dir, 4, 2);
    let wal_path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    // Flip one bit early in the file body (inside the first record),
    // leaving plenty of valid-looking data after it: committed history
    // is damaged, and recovery must say so instead of guessing.
    bytes[40] ^= 0x04;
    std::fs::write(&wal_path, &bytes).unwrap();
    match recover::<BatchDynamicConnectivity>(&dir) {
        Err(DynConError::Corrupt { path, detail, .. }) => {
            assert!(path.ends_with(WAL_FILE), "{path}");
            assert!(!detail.is_empty());
        }
        Err(other) => panic!("expected Corrupt, got {other:?}"),
        Ok(_) => panic!("mid-log corruption must not recover silently"),
    }
    cleanup(&dir);
}

#[test]
fn snapshot_compaction_round_trip_preserves_the_observable_graph() {
    let rounds = canonical_rounds();
    let (reference, expected) = uninterrupted();
    let k = 6;
    let dir = scratch_dir("compaction");
    {
        // This lifetime compacts at join: snapshot written, WAL emptied.
        let scheds = schedules();
        let (server, _) = DurableServer::<BatchDynamicConnectivity>::open(
            &dir,
            N,
            ServerConfig::new().deterministic(true).queue_capacity(64),
            DurableConfig::new().fsync(FsyncPolicy::EveryNRounds(2)),
        )
        .unwrap();
        for r in 0..k {
            for (c, sched) in scheds.iter().enumerate() {
                server.submit_as(c as u64, sched[r].clone()).unwrap();
            }
            server.seal_round();
        }
        let report = server.join().unwrap();
        assert!(report.compacted);
        assert_eq!(report.next_round, k as u64);
    }
    let readout = read_wal(&dir).unwrap().unwrap();
    assert!(readout.records.is_empty(), "compaction emptied the log");

    // Recovery now costs the graph, not the history: zero replayed
    // rounds, round numbering preserved.
    let (mut recovered, meta) = recover::<BatchDynamicConnectivity>(&dir).unwrap();
    assert_eq!((meta.snapshot_rounds, meta.replayed_rounds), (k as u64, 0));
    assert_eq!(meta.next_round, k as u64);

    // A snapshot rebuild has different internal history (one bulk
    // insert), so compare semantics: edge set, query answers and the
    // component partition — plus the BatchResults of all remaining
    // traffic, which are semantic and must still match byte for byte.
    let mut reference_at_k = BatchDynamicConnectivity::new(N);
    for ops in &rounds[..k] {
        reference_at_k.apply(ops).unwrap();
    }
    assert_eq!(recovered.export_edges(), reference_at_k.export_edges());
    assert_eq!(
        partition(&recovered.component_labels()),
        partition(&reference_at_k.component_labels())
    );
    let tail_results: Vec<BatchResult> = rounds[k..]
        .iter()
        .map(|ops| recovered.apply(ops).unwrap())
        .collect();
    assert_eq!(tail_results, expected[k..]);
    assert_eq!(recovered.export_edges(), reference.export_edges());
    cleanup(&dir);
}

/// Canonicalize an opaque labelling into first-occurrence indices so two
/// labellings compare as partitions.
fn partition(labels: &[u64]) -> Vec<u32> {
    let mut map = std::collections::HashMap::new();
    labels
        .iter()
        .map(|&l| {
            let next = map.len() as u32;
            *map.entry(l).or_insert(next)
        })
        .collect()
}
