//! The serving layer's determinism contract under real concurrency:
//! N client threads submitting seeded schedules through the group-commit
//! frontend in deterministic mode must produce rounds **byte-identical**
//! to a serial replay of the same rounds — at 1, 2 and 4 worker threads —
//! and agree with the naive oracle. Plus a throughput-mode stress run:
//! no lost requests, no lost ops, invariants intact.

use dyncon_api::{BatchDynamic, BatchResult, Op, OpKind};
use dyncon_core::BatchDynamicConnectivity;
use dyncon_graphgen::zipf_client_schedules;
use dyncon_server::{ConnServer, RoundRecord, ServerConfig};
use dyncon_spanning::NaiveDynamicGraph;
use std::sync::Barrier;

const N: usize = 256;
const CLIENTS: usize = 4;
const ROUNDS: usize = 6;
const OPS_PER_REQUEST: usize = 24;

/// schedules[client][round] — one request per client per round.
fn schedules() -> Vec<Vec<Vec<Op>>> {
    zipf_client_schedules(N, CLIENTS, ROUNDS, OPS_PER_REQUEST, 0.4, 1.1, 4242)
}

/// The canonical round contents deterministic mode promises: for each
/// round, every client's request in client-id order (each client submits
/// exactly one request per round here).
fn expected_rounds(schedules: &[Vec<Vec<Op>>]) -> Vec<Vec<Op>> {
    (0..ROUNDS)
        .map(|r| {
            schedules
                .iter()
                .flat_map(|client| client[r].iter().copied())
                .collect()
        })
        .collect()
}

/// Drive the server with truly concurrent clients: all clients submit
/// their round-r request, a barrier, the main thread seals, everyone
/// collects their ticket, a second barrier gates round r+1. Returns the
/// round log and each client's per-round answers.
fn run_concurrent(worker_threads: usize) -> (Vec<RoundRecord>, Vec<Vec<Vec<bool>>>) {
    let scheds = schedules();
    let server = ConnServer::start(
        BatchDynamicConnectivity::new(N),
        ServerConfig::new()
            .deterministic(true)
            .record_rounds(true)
            .worker_threads(worker_threads)
            .queue_capacity(CLIENTS * ROUNDS),
    );
    let submitted = Barrier::new(CLIENTS + 1);
    let committed = Barrier::new(CLIENTS + 1);
    let mut per_client_answers: Vec<Vec<Vec<bool>>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = scheds
            .iter()
            .enumerate()
            .map(|(c, sched)| {
                let (server, submitted, committed) = (&server, &submitted, &committed);
                scope.spawn(move || {
                    let mut answers = Vec::with_capacity(ROUNDS);
                    for ops in sched {
                        let ticket = server.submit_as(c as u64, ops.clone()).unwrap();
                        submitted.wait();
                        answers.push(ticket.wait().unwrap().answers);
                        committed.wait();
                    }
                    answers
                })
            })
            .collect();
        for _ in 0..ROUNDS {
            submitted.wait();
            assert_eq!(server.seal_round(), CLIENTS);
            committed.wait();
        }
        for h in handles {
            per_client_answers.push(h.join().unwrap());
        }
    });
    let report = server.join();
    assert_eq!(report.rounds_committed, ROUNDS as u64);
    (report.rounds, per_client_answers)
}

/// Serial replay of the canonical rounds on a fresh backend.
fn serial_replay(rounds: &[Vec<Op>]) -> Vec<BatchResult> {
    let mut g = BatchDynamicConnectivity::new(N);
    rounds.iter().map(|ops| g.apply(ops).unwrap()).collect()
}

#[test]
fn deterministic_mode_matches_serial_replay_across_worker_threads() {
    let expected_ops = expected_rounds(&schedules());
    let expected_results = serial_replay(&expected_ops);
    for worker_threads in [1usize, 2, 4] {
        let (rounds, _) = run_concurrent(worker_threads);
        // Round boundaries and canonical op order are schedule-derived,
        // not interleaving-derived…
        let got_ops: Vec<Vec<Op>> = rounds.iter().map(|r| r.ops.clone()).collect();
        assert_eq!(got_ops, expected_ops, "{worker_threads} worker threads");
        // …and the committed results are byte-identical to serial replay.
        let got_results: Vec<BatchResult> = rounds.iter().map(|r| r.result.clone()).collect();
        assert_eq!(
            got_results, expected_results,
            "{worker_threads} worker threads"
        );
    }
}

#[test]
fn per_client_answers_match_replay_slices() {
    let scheds = schedules();
    let expected_ops = expected_rounds(&scheds);
    let expected_results = serial_replay(&expected_ops);
    let (_, per_client) = run_concurrent(2);
    // Reconstruct each client's slice of every round's answer vector:
    // clients are applied in id order within a round.
    for r in 0..ROUNDS {
        let mut cursor = expected_results[r].answers.iter().copied();
        for (c, client_answers) in per_client.iter().enumerate() {
            let queries = scheds[c][r]
                .iter()
                .filter(|op| op.kind() == OpKind::Query)
                .count();
            let expected: Vec<bool> = cursor.by_ref().take(queries).collect();
            assert_eq!(client_answers[r], expected, "client {c}, round {r}");
        }
        assert!(cursor.next().is_none(), "round {r} answers fully consumed");
    }
}

#[test]
fn deterministic_mode_agrees_with_naive_oracle() {
    let expected_ops = expected_rounds(&schedules());
    let (rounds, _) = run_concurrent(4);
    let mut oracle = NaiveDynamicGraph::new(N);
    for (record, ops) in rounds.iter().zip(&expected_ops) {
        let oracle_result = BatchDynamic::apply(&mut oracle, ops).unwrap();
        assert_eq!(record.result, oracle_result, "round {}", record.round);
    }
}

#[test]
fn concurrent_runs_are_mutually_byte_identical() {
    // Two runs with maximally different OS interleavings (1 vs 4 worker
    // threads, fresh client threads) — the whole point of the contract.
    let a = run_concurrent(1);
    let b = run_concurrent(4);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}

#[test]
fn throughput_mode_loses_nothing_under_contention() {
    let scheds = zipf_client_schedules(N, 8, 32, 16, 0.5, 1.2, 777);
    let total_ops: usize = scheds.iter().flatten().map(Vec::len).sum();
    let server = ConnServer::start(
        BatchDynamicConnectivity::new(N),
        ServerConfig::new()
            .batch_cap(128)
            .queue_capacity(16)
            .coalesce_wait(std::time::Duration::from_micros(50)),
    );
    std::thread::scope(|scope| {
        for sched in &scheds {
            let server = &server;
            scope.spawn(move || {
                for ops in sched {
                    // Blocking submit rides out backpressure instead of
                    // dropping requests.
                    let queries = ops.iter().filter(|o| o.kind() == OpKind::Query).count();
                    let ticket = server.submit_blocking(ops.clone()).unwrap();
                    let result = ticket.wait().unwrap();
                    assert_eq!(result.answers.len(), queries);
                }
            });
        }
    });
    let report = server.join();
    assert_eq!(
        report.ops_committed as usize, total_ops,
        "no op lost or duplicated"
    );
    assert!(
        report.rounds_committed > 1,
        "traffic split into multiple rounds"
    );
    report
        .backend
        .check()
        .expect("backend invariants survive the stress");
}
